"""Loop-based ``vmap`` for the jaxlike baseline.

JAX's ``vmap`` is a tracing transform; the jaxlike baseline is eager, so its
``vmap`` is the *reference semantics* spelled out directly: slice every
batched argument along its ``in_axes`` axis, run the wrapped function once
per sample, and stack the per-sample results along a new leading axis.  This
is exactly the per-sample loop ``repro.vmap`` (the SDFG-level transform) is
measured against in ``benchmarks/bench_batching.py`` and cross-checked
against in the batched-gradient tests.

Composes with the baseline's eager AD::

    from repro.baselines import jaxlike as jax

    per_sample_grads = jax.vmap(jax.grad(loss))(stacked_x)
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.baselines.jaxlike.engine import DeviceArray, asarray

InAxes = Union[int, None, Sequence[Optional[int]]]


def _unwrap(value):
    return value.value if isinstance(value, DeviceArray) else value


def vmap(fun: Callable, in_axes: InAxes = 0) -> Callable:
    """Vectorise ``fun`` over a batch axis by an explicit per-sample loop.

    ``in_axes`` is an int applied to every positional argument, or a
    sequence with one entry per positional argument (``None`` = broadcast
    that argument unchanged to every sample).  Keyword arguments always
    broadcast.  The wrapped function may return an array, a scalar, or a
    (nested) tuple/list/dict of them; results are stacked per leaf.
    """

    def wrapped(*args, **kwargs):
        axes = in_axes if isinstance(in_axes, (list, tuple)) else [in_axes] * len(args)
        if len(axes) != len(args):
            raise ValueError(
                f"vmap in_axes has {len(axes)} entries for {len(args)} arguments"
            )
        batch_size = None
        for arg, axis in zip(args, axes):
            if axis is None:
                continue
            size = np.asarray(_unwrap(arg)).shape[axis]
            if batch_size is None:
                batch_size = size
            elif size != batch_size:
                raise ValueError(
                    f"Inconsistent batch sizes along in_axes: {size} vs {batch_size}"
                )
        if batch_size is None:
            raise ValueError("vmap needs at least one non-None in_axes entry")

        results = []
        for sample in range(batch_size):
            sliced = [
                arg if axis is None
                else asarray(np.take(np.asarray(_unwrap(arg)), sample, axis=axis))
                for arg, axis in zip(args, axes)
            ]
            results.append(fun(*sliced, **kwargs))
        return _stack(results)

    return wrapped


def _stack(results: list):
    """Stack per-sample results along a new leading axis, per structure leaf."""
    first = results[0]
    if isinstance(first, dict):
        return {key: _stack([r[key] for r in results]) for key in first}
    if isinstance(first, (tuple, list)):
        return type(first)(
            _stack([r[position] for r in results]) for position in range(len(first))
        )
    return np.stack([np.asarray(_unwrap(r)) for r in results], axis=0)
