"""``jit``: compilation stub.

Real JAX traces the function and compiles it with XLA.  Offline, there is no
XLA; ``jit`` therefore returns a thin wrapper that simply calls the function
(after a first "warmup" call, mirroring how benchmarks exclude compilation
time).  The benchmark harness treats jaxlike numbers accordingly - see the
substitution discussion in DESIGN.md.
"""

from __future__ import annotations

import functools
from typing import Callable


def jit(fun: Callable = None, **_ignored) -> Callable:
    """Identity wrapper mirroring ``jax.jit``'s call signature."""
    if fun is None:
        return lambda f: jit(f)

    @functools.wraps(fun)
    def wrapped(*args, **kwargs):
        return fun(*args, **kwargs)

    wrapped.__wrapped_by_jit__ = True
    return wrapped
