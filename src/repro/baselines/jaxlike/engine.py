"""Core of the jaxlike baseline: immutable arrays and the AD tape.

Every operation produces a *new* :class:`DeviceArray` (functional semantics).
When a gradient tape is active, operations additionally append a node with
its vector-Jacobian products, so :func:`repro.baselines.jaxlike.ad.grad` can
run a reverse sweep.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

# ---------------------------------------------------------------------------
# Gradient tape
# ---------------------------------------------------------------------------


class TapeNode:
    """One primitive application recorded on the tape."""

    __slots__ = ("parents", "vjps", "gradient")

    def __init__(self, parents: list["DeviceArray"], vjps: list[Callable]) -> None:
        self.parents = parents
        self.vjps = vjps
        self.gradient: Optional[np.ndarray] = None


class GradientTape:
    """Records primitives in execution order for the reverse sweep."""

    def __init__(self) -> None:
        self.nodes: list[TapeNode] = []

    def record(self, parents: list["DeviceArray"], vjps: list[Callable]) -> TapeNode:
        node = TapeNode(parents, vjps)
        self.nodes.append(node)
        return node


_TAPE_STACK: list[GradientTape] = []


def push_tape(tape: GradientTape) -> None:
    _TAPE_STACK.append(tape)


def pop_tape() -> GradientTape:
    return _TAPE_STACK.pop()


def active_tape() -> Optional[GradientTape]:
    return _TAPE_STACK[-1] if _TAPE_STACK else None


# ---------------------------------------------------------------------------
# DeviceArray
# ---------------------------------------------------------------------------


def _value_of(operand) -> np.ndarray:
    if isinstance(operand, DeviceArray):
        return operand.value
    return np.asarray(operand)


def asarray(value, dtype=None) -> "DeviceArray":
    if isinstance(value, DeviceArray):
        return value if dtype is None else DeviceArray(value.value.astype(dtype))
    return DeviceArray(np.array(value, dtype=dtype, copy=True))


def make_result(value: np.ndarray, parents: list, vjps: list[Callable]) -> "DeviceArray":
    """Wrap a primitive result, recording it on the active tape if any."""
    result = DeviceArray(value)
    tape = active_tape()
    traced_parents = [p for p in parents if isinstance(p, DeviceArray) and p._node is not None]
    if tape is not None and (traced_parents or any(isinstance(p, DeviceArray) and p._requires_grad
                                                   for p in parents)):
        kept_parents = []
        kept_vjps = []
        for parent, vjp in zip(parents, vjps):
            if isinstance(parent, DeviceArray) and (parent._node is not None or parent._requires_grad):
                kept_parents.append(parent)
                kept_vjps.append(vjp)
        node = tape.record(kept_parents, kept_vjps)
        result._node = node
    return result


def _unbroadcast(gradient: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a gradient to the shape of the broadcast operand."""
    gradient = np.asarray(gradient)
    if gradient.shape == tuple(shape):
        return gradient
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class _IndexUpdateRef:
    """``x.at[idx]`` - functional index updates (immutable semantics)."""

    def __init__(self, array: "DeviceArray", index) -> None:
        self.array = array
        self.index = index

    def set(self, values) -> "DeviceArray":
        base = self.array
        index = self.index
        new_value = np.array(base.value, copy=True)  # full copy, as in JAX
        new_value[index] = _value_of(values)

        def vjp_base(gradient):
            grad_base = np.array(gradient, copy=True)
            grad_base[index] = 0.0
            return grad_base

        def vjp_values(gradient):
            return _unbroadcast(np.asarray(gradient)[index], np.shape(_value_of(values)))

        return make_result(new_value, [base, values if isinstance(values, DeviceArray) else None],
                           [vjp_base, vjp_values])

    def add(self, values) -> "DeviceArray":
        base = self.array
        index = self.index
        new_value = np.array(base.value, copy=True)
        np.add.at(new_value, index, _value_of(values))

        def vjp_base(gradient):
            return np.asarray(gradient)

        def vjp_values(gradient):
            return _unbroadcast(np.asarray(gradient)[index], np.shape(_value_of(values)))

        return make_result(new_value, [base, values if isinstance(values, DeviceArray) else None],
                           [vjp_base, vjp_values])


class _AtHelper:
    def __init__(self, array: "DeviceArray") -> None:
        self.array = array

    def __getitem__(self, index) -> _IndexUpdateRef:
        return _IndexUpdateRef(self.array, index)


class DeviceArray:
    """Immutable array value (functional semantics, like ``jax.Array``)."""

    __slots__ = ("value", "_node", "_requires_grad")

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value)
        self.value.setflags(write=False)
        self._node: Optional[TapeNode] = None
        self._requires_grad = False

    # -- metadata ------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def ndim(self) -> int:
        return self.value.ndim

    @property
    def dtype(self):
        return self.value.dtype

    @property
    def size(self) -> int:
        return self.value.size

    @property
    def T(self) -> "DeviceArray":
        from repro.baselines.jaxlike import numpy_api as jnp

        return jnp.transpose(self)

    @property
    def at(self) -> _AtHelper:
        return _AtHelper(self)

    def astype(self, dtype) -> "DeviceArray":
        return make_result(self.value.astype(dtype), [self], [lambda g: np.asarray(g)])

    def copy(self) -> "DeviceArray":
        return make_result(np.array(self.value, copy=True), [self], [lambda g: np.asarray(g)])

    def item(self) -> float:
        return self.value.item()

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __len__(self) -> int:
        return len(self.value)

    def __repr__(self) -> str:
        return f"DeviceArray({self.value!r})"

    # -- arithmetic ---------------------------------------------------------------
    def _binary(self, other, forward, vjp_self, vjp_other) -> "DeviceArray":
        other_value = _value_of(other)
        result = forward(self.value, other_value)
        parents = [self, other if isinstance(other, DeviceArray) else None]
        return make_result(
            result,
            parents,
            [
                lambda g: _unbroadcast(vjp_self(np.asarray(g), self.value, other_value), self.shape),
                lambda g: _unbroadcast(vjp_other(np.asarray(g), self.value, other_value),
                                       np.shape(other_value)),
            ],
        )

    def __add__(self, other):
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other):
        return asarray(other).__sub__(self)

    def __mul__(self, other):
        return self._binary(other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return self._binary(other, np.divide, lambda g, a, b: g / b,
                            lambda g, a, b: -g * a / (b * b))

    def __rtruediv__(self, other):
        return asarray(other).__truediv__(self)

    def __pow__(self, exponent):
        return self._binary(
            exponent, np.power,
            lambda g, a, b: g * b * np.power(a, b - 1),
            lambda g, a, b: g * np.power(a, b) * np.log(np.where(a > 0, a, 1.0)),
        )

    def __neg__(self):
        return make_result(-self.value, [self], [lambda g: -np.asarray(g)])

    def __matmul__(self, other):
        from repro.baselines.jaxlike import numpy_api as jnp

        return jnp.matmul(self, other)

    def __rmatmul__(self, other):
        from repro.baselines.jaxlike import numpy_api as jnp

        return jnp.matmul(asarray(other), self)

    # -- comparisons (no gradient) ----------------------------------------------
    def __lt__(self, other):
        return DeviceArray(self.value < _value_of(other))

    def __le__(self, other):
        return DeviceArray(self.value <= _value_of(other))

    def __gt__(self, other):
        return DeviceArray(self.value > _value_of(other))

    def __ge__(self, other):
        return DeviceArray(self.value >= _value_of(other))

    def __eq__(self, other):  # noqa: D105 - array semantics, not identity
        return DeviceArray(self.value == _value_of(other))

    def __ne__(self, other):
        return DeviceArray(self.value != _value_of(other))

    def __hash__(self) -> int:
        return id(self)

    # -- indexing (gather; functional) ----------------------------------------------
    def __getitem__(self, index) -> "DeviceArray":
        index_value = index.value if isinstance(index, DeviceArray) else index
        result = np.array(self.value[index_value], copy=True)

        def vjp(gradient):
            out = np.zeros_like(self.value, dtype=np.result_type(self.value.dtype, np.float64))
            np.add.at(out, index_value, np.asarray(gradient))
            return out

        return make_result(result, [self], [vjp])
