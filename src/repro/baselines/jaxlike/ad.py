"""Reverse-mode AD for the jaxlike baseline: ``grad`` and ``value_and_grad``."""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.baselines.jaxlike.engine import (
    DeviceArray,
    GradientTape,
    asarray,
    pop_tape,
    push_tape,
)


def _backward(tape: GradientTape, output: DeviceArray, seed: np.ndarray) -> None:
    """Reverse sweep over the tape, accumulating node gradients."""
    if output._node is None:
        return
    output._node.gradient = np.asarray(seed, dtype=np.float64)
    for node in reversed(tape.nodes):
        if node.gradient is None:
            continue
        for parent, vjp in zip(node.parents, node.vjps):
            if parent is None or not isinstance(parent, DeviceArray):
                continue
            contribution = vjp(node.gradient)
            if parent._node is not None:
                if parent._node.gradient is None:
                    parent._node.gradient = np.zeros(parent.shape, dtype=np.float64)
                parent._node.gradient = parent._node.gradient + contribution
            elif parent._requires_grad:
                if getattr(parent, "_leaf_gradient", None) is None:
                    parent._leaf_gradient = np.zeros(parent.shape, dtype=np.float64)
                parent._leaf_gradient = parent._leaf_gradient + contribution


class _Leaf(DeviceArray):
    """A differentiated input: accumulates its own gradient during backward."""

    __slots__ = ("_leaf_gradient",)

    def __init__(self, value) -> None:
        super().__init__(np.array(value, copy=True))
        self._requires_grad = True
        self._leaf_gradient = None


def value_and_grad(fun: Callable, argnums: Union[int, Sequence[int]] = 0) -> Callable:
    """Return a function computing ``(value, gradients)`` of ``fun``.

    ``argnums`` selects which positional arguments are differentiated (an int
    or a tuple of ints, like JAX).
    """
    single = isinstance(argnums, int)
    argnum_list = [argnums] if single else list(argnums)

    def wrapped(*args, **kwargs):
        tape = GradientTape()
        push_tape(tape)
        try:
            call_args = list(args)
            leaves: dict[int, _Leaf] = {}
            for argnum in argnum_list:
                leaf = _Leaf(np.asarray(args[argnum], dtype=np.float64)
                             if not isinstance(args[argnum], DeviceArray)
                             else args[argnum].value)
                leaves[argnum] = leaf
                call_args[argnum] = leaf
            output = fun(*call_args, **kwargs)
            output = asarray(output)
            if output.shape != ():
                raise ValueError("grad requires a scalar-output function")
            _backward(tape, output, np.ones(()))
        finally:
            pop_tape()
        gradients = []
        for argnum in argnum_list:
            leaf = leaves[argnum]
            gradient = leaf._leaf_gradient
            if gradient is None:
                gradient = np.zeros(leaf.shape, dtype=np.float64)
            gradients.append(gradient)
        value = output.value
        if single:
            return value, gradients[0]
        return value, tuple(gradients)

    return wrapped


def grad(fun: Callable, argnums: Union[int, Sequence[int]] = 0) -> Callable:
    """Gradient of a scalar-output function (like ``jax.grad``)."""
    vag = value_and_grad(fun, argnums)

    def wrapped(*args, **kwargs):
        _, gradients = vag(*args, **kwargs)
        return gradients

    return wrapped
