"""``lax``-style structured primitives: scan, cond, dynamic slicing.

These reproduce the constructs the paper's JAX ports need for loop-heavy
kernels (Section V-A2): ``scan`` for sequential loops,
``dynamic_slice``/``dynamic_update_slice`` for non-static indexing (with the
index clamping JAX performs as a bounds check), and ``cond`` for branching.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.baselines.jaxlike.engine import DeviceArray, _value_of, asarray, make_result


def _clamp_starts(starts: Sequence[int], shape: tuple, sizes: Sequence[int]) -> list[int]:
    """JAX clamps out-of-range start indices instead of raising (bounds check)."""
    clamped = []
    for start, dim, size in zip(starts, shape, sizes):
        start = int(_value_of(start))
        clamped.append(max(0, min(start, dim - size)))
    return clamped


def dynamic_slice(operand, start_indices: Sequence[int], slice_sizes: Sequence[int]) -> DeviceArray:
    """Extract a fixed-size slice at a (possibly runtime) offset."""
    operand = asarray(operand)
    starts = _clamp_starts(start_indices, operand.shape, slice_sizes)
    index = tuple(slice(s, s + size) for s, size in zip(starts, slice_sizes))
    value = np.array(operand.value[index], copy=True)

    def vjp(gradient):
        out = np.zeros_like(operand.value, dtype=np.float64)
        out[index] = np.asarray(gradient)
        return out

    return make_result(value, [operand], [vjp])


def dynamic_update_slice(operand, update, start_indices: Sequence[int]) -> DeviceArray:
    """Return a copy of ``operand`` with ``update`` written at the offset."""
    operand = asarray(operand)
    update_value = _value_of(update)
    starts = _clamp_starts(start_indices, operand.shape, update_value.shape)
    index = tuple(slice(s, s + size) for s, size in zip(starts, update_value.shape))
    new_value = np.array(operand.value, copy=True)  # full copy per update
    new_value[index] = update_value

    def vjp_operand(gradient):
        grad_operand = np.array(gradient, copy=True)
        grad_operand[index] = 0.0
        return grad_operand

    def vjp_update(gradient):
        return np.array(np.asarray(gradient)[index], copy=True)

    return make_result(new_value,
                       [operand, update if isinstance(update, DeviceArray) else None],
                       [vjp_operand, vjp_update])


def cond(predicate, true_fn: Callable, false_fn: Callable, *operands):
    """Branch on a runtime predicate (both branches are traceable)."""
    if bool(_value_of(predicate)):
        return true_fn(*operands)
    return false_fn(*operands)


def fori_loop(lower: int, upper: int, body_fn: Callable, init_val):
    """``for i in range(lower, upper): val = body_fn(i, val)`` functionally."""
    value = init_val
    for i in range(int(_value_of(lower)), int(_value_of(upper))):
        value = body_fn(i, value)
    return value


def scan(body_fn: Callable, init_carry, xs=None, length: int | None = None):
    """Functional sequential loop.

    ``body_fn(carry, x) -> (new_carry, y)``; returns ``(final_carry, stacked_ys)``.
    The carry is rebuilt every iteration (functional semantics), which is the
    behaviour whose per-iteration cost the paper analyses for JAX.
    """
    if xs is None:
        if length is None:
            raise ValueError("scan requires xs or length")
        iterable = range(int(length))
    else:
        iterable = [xs[i] for i in range(len(_value_of(xs)))]

    carry = init_carry
    outputs = []
    for x in iterable:
        carry, y = body_fn(carry, x)
        if y is not None:
            outputs.append(y)
    if not outputs:
        return carry, None
    stacked = np.stack([_value_of(y) for y in outputs])
    return carry, DeviceArray(stacked)
