"""``jnp``: the NumPy-like functional API of the jaxlike baseline.

Every function returns a fresh :class:`DeviceArray` and registers its
vector-Jacobian products with the active gradient tape.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.jaxlike.engine import (
    DeviceArray,
    _unbroadcast,
    _value_of,
    asarray,
    make_result,
)

float32 = np.float32
float64 = np.float64
int32 = np.int32
int64 = np.int64
newaxis = None
pi = np.pi

array = asarray


# -- creation -------------------------------------------------------------------
def zeros(shape, dtype=np.float64) -> DeviceArray:
    return DeviceArray(np.zeros(shape, dtype=dtype))


def ones(shape, dtype=np.float64) -> DeviceArray:
    return DeviceArray(np.ones(shape, dtype=dtype))


def full(shape, value, dtype=np.float64) -> DeviceArray:
    return DeviceArray(np.full(shape, value, dtype=dtype))


def zeros_like(x) -> DeviceArray:
    return DeviceArray(np.zeros_like(_value_of(x)))


def ones_like(x) -> DeviceArray:
    return DeviceArray(np.ones_like(_value_of(x)))


def arange(*args, **kwargs) -> DeviceArray:
    return DeviceArray(np.arange(*args, **kwargs))


def copy(x) -> DeviceArray:
    x = asarray(x)
    return x.copy()


# -- unary elementwise ---------------------------------------------------------------
def _unary(x, forward, derivative) -> DeviceArray:
    x = asarray(x)
    value = forward(x.value)
    return make_result(value, [x], [lambda g: np.asarray(g) * derivative(x.value, value)])


def sin(x):
    return _unary(x, np.sin, lambda v, out: np.cos(v))


def cos(x):
    return _unary(x, np.cos, lambda v, out: -np.sin(v))


def tan(x):
    return _unary(x, np.tan, lambda v, out: 1.0 / np.cos(v) ** 2)


def exp(x):
    return _unary(x, np.exp, lambda v, out: out)


def log(x):
    return _unary(x, np.log, lambda v, out: 1.0 / v)


def sqrt(x):
    return _unary(x, np.sqrt, lambda v, out: 0.5 / out)


def tanh(x):
    return _unary(x, np.tanh, lambda v, out: 1.0 - out * out)


def abs(x):  # noqa: A001 - mirrors numpy
    return _unary(x, np.abs, lambda v, out: np.sign(v))


fabs = abs


def sign(x):
    return _unary(x, np.sign, lambda v, out: np.zeros_like(v))


# -- binary elementwise ---------------------------------------------------------------
def add(a, b):
    return asarray(a) + b


def subtract(a, b):
    return asarray(a) - b


def multiply(a, b):
    return asarray(a) * b


def divide(a, b):
    return asarray(a) / b


true_divide = divide


def power(a, b):
    return asarray(a) ** b


def maximum(a, b) -> DeviceArray:
    a, bv = asarray(a), _value_of(b)
    value = np.maximum(a.value, bv)
    mask = a.value >= bv
    return make_result(
        value,
        [a, b if isinstance(b, DeviceArray) else None],
        [
            lambda g: _unbroadcast(np.asarray(g) * mask, a.shape),
            lambda g: _unbroadcast(np.asarray(g) * (~mask), np.shape(bv)),
        ],
    )


def minimum(a, b) -> DeviceArray:
    a, bv = asarray(a), _value_of(b)
    value = np.minimum(a.value, bv)
    mask = a.value <= bv
    return make_result(
        value,
        [a, b if isinstance(b, DeviceArray) else None],
        [
            lambda g: _unbroadcast(np.asarray(g) * mask, a.shape),
            lambda g: _unbroadcast(np.asarray(g) * (~mask), np.shape(bv)),
        ],
    )


def where(condition, a, b) -> DeviceArray:
    cond = _value_of(condition)
    av, bv = _value_of(a), _value_of(b)
    value = np.where(cond, av, bv)
    return make_result(
        value,
        [a if isinstance(a, DeviceArray) else None, b if isinstance(b, DeviceArray) else None],
        [
            lambda g: _unbroadcast(np.asarray(g) * cond, np.shape(av)),
            lambda g: _unbroadcast(np.asarray(g) * (~np.asarray(cond, dtype=bool)), np.shape(bv)),
        ],
    )


# -- linear algebra ------------------------------------------------------------------
def matmul(a, b) -> DeviceArray:
    a, b = asarray(a), asarray(b)
    value = a.value @ b.value

    def vjp_a(gradient):
        g = np.asarray(gradient)
        if a.ndim == 2 and b.ndim == 2:
            return g @ b.value.T
        if a.ndim == 2 and b.ndim == 1:
            return np.outer(g, b.value)
        if a.ndim == 1 and b.ndim == 2:
            return b.value @ g
        return g * b.value

    def vjp_b(gradient):
        g = np.asarray(gradient)
        if a.ndim == 2 and b.ndim == 2:
            return a.value.T @ g
        if a.ndim == 2 and b.ndim == 1:
            return a.value.T @ g
        if a.ndim == 1 and b.ndim == 2:
            return np.outer(a.value, g)
        return g * a.value

    return make_result(value, [a, b], [vjp_a, vjp_b])


dot = matmul


def outer(a, b) -> DeviceArray:
    a, b = asarray(a), asarray(b)
    value = np.outer(a.value, b.value)
    return make_result(
        value,
        [a, b],
        [lambda g: np.asarray(g) @ b.value, lambda g: a.value @ np.asarray(g)],
    )


def transpose(x, axes=None) -> DeviceArray:
    x = asarray(x)
    value = np.transpose(x.value, axes)

    def vjp(gradient):
        if axes is None:
            return np.transpose(np.asarray(gradient))
        inverse = np.argsort(axes)
        return np.transpose(np.asarray(gradient), inverse)

    return make_result(value, [x], [vjp])


def reshape(x, shape) -> DeviceArray:
    x = asarray(x)
    value = np.reshape(x.value, shape)
    return make_result(value, [x], [lambda g: np.reshape(np.asarray(g), x.shape)])


# -- reductions ---------------------------------------------------------------------
def sum(x, axis=None, keepdims=False) -> DeviceArray:  # noqa: A001 - mirrors numpy
    x = asarray(x)
    value = np.sum(x.value, axis=axis, keepdims=keepdims)

    def vjp(gradient):
        g = np.asarray(gradient)
        if axis is None:
            return np.broadcast_to(g, x.shape).copy()
        if not keepdims:
            g = np.expand_dims(g, axis)
        return np.broadcast_to(g, x.shape).copy()

    return make_result(value, [x], [vjp])


def mean(x, axis=None, keepdims=False) -> DeviceArray:
    x = asarray(x)
    count = x.size if axis is None else x.shape[axis]
    return sum(x, axis=axis, keepdims=keepdims) / count


def max(x, axis=None, keepdims=False) -> DeviceArray:  # noqa: A001 - mirrors numpy
    x = asarray(x)
    value = np.max(x.value, axis=axis, keepdims=keepdims)

    def vjp(gradient):
        g = np.asarray(gradient)
        expanded = value if keepdims or axis is None else np.expand_dims(value, axis)
        grad_exp = g if keepdims or axis is None else np.expand_dims(g, axis)
        mask = x.value == expanded
        counts = np.sum(mask, axis=axis, keepdims=True) if axis is not None else np.sum(mask)
        return mask * grad_exp / counts

    return make_result(value, [x], [vjp])


def min(x, axis=None, keepdims=False) -> DeviceArray:  # noqa: A001 - mirrors numpy
    x = asarray(x)
    value = np.min(x.value, axis=axis, keepdims=keepdims)

    def vjp(gradient):
        g = np.asarray(gradient)
        expanded = value if keepdims or axis is None else np.expand_dims(value, axis)
        grad_exp = g if keepdims or axis is None else np.expand_dims(g, axis)
        mask = x.value == expanded
        counts = np.sum(mask, axis=axis, keepdims=True) if axis is not None else np.sum(mask)
        return mask * grad_exp / counts

    return make_result(value, [x], [vjp])


amax = max
amin = min


def allclose(a, b, rtol=1e-5, atol=1e-8) -> bool:
    return bool(np.allclose(_value_of(a), _value_of(b), rtol=rtol, atol=atol))
