"""jaxlike: a functional, immutable-array AD baseline standing in for JAX JIT.

The paper compares DaCe AD against JAX with JIT compilation.  JAX itself is
not available offline, so this package reimplements the *semantics* that the
paper identifies as the source of JAX's overhead on scientific codes
(Section V-B):

* arrays are immutable - every ``x.at[idx].set(v)`` / ``.add(v)`` produces a
  full copy of the array;
* dynamic slicing (``lax.dynamic_slice`` / ``dynamic_update_slice``) clamps
  the start indices (bounds checking) and materialises a fresh array;
* loops are expressed with ``lax.scan`` over a pure body function;
* reverse-mode AD (``grad`` / ``value_and_grad``) is trace-based and its
  backward pass again builds full-size arrays for every indexed update.

``jit`` is a no-op wrapper (there is no XLA offline); consequently absolute
times are *not* comparable to real JAX JIT, but the structural overheads that
produce the paper's speedups - per-iteration array materialisation, dynamic
slicing, bounds checks - are faithfully present.  DESIGN.md discusses this
substitution.

Usage mirrors JAX::

    from repro.baselines import jaxlike as jax
    from repro.baselines.jaxlike import numpy as jnp

    def loss(x):
        return jnp.sum(jnp.sin(x))

    g = jax.grad(loss)(x)
"""

from repro.baselines.jaxlike import lax
from repro.baselines.jaxlike import numpy_api as numpy
from repro.baselines.jaxlike.engine import DeviceArray, asarray
from repro.baselines.jaxlike.ad import grad, value_and_grad
from repro.baselines.jaxlike.jit import jit
from repro.baselines.jaxlike.vmap import vmap

__all__ = [
    "DeviceArray",
    "asarray",
    "numpy",
    "lax",
    "grad",
    "value_and_grad",
    "jit",
    "vmap",
]
