"""Unified observability: tracing, metrics and runtime profiling.

One subsystem for every timing and counting need of the compiler and the
serving tier (see ``docs/observability.md``):

* **Tracing** (:mod:`repro.obs.trace`): nestable ``span("name", **attrs)``
  contexts on a monotonic clock, collected by a process-wide
  :class:`Tracer` with bounded ring-buffer retention.  Off by default; the
  disabled path is a single attribute check returning a shared no-op.
* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and fixed-bucket
  histograms with p50/p95/p99 estimation in a process-wide
  :class:`MetricsRegistry`.
* **Exporters** (:mod:`repro.obs.export`): Chrome-trace/Perfetto JSON
  (:func:`export_chrome`) and flat metrics snapshots
  (:func:`metrics_snapshot`) that ``benchmarks/_common.write_results``
  stamps into every benchmark envelope.
* **Profiling** (:mod:`repro.obs.profile`):
  ``repro.compile(..., profile=True)`` wraps the compiled callable so every
  execution feeds per-kernel runtime histograms, including the native C
  kernel vs NumPy driver split under the cython backend.
* **Clock** (:mod:`repro.obs.clock`): the single monotonic time source all
  of the above (and both legacy timing helpers) read.

Instrumentation is wired through the pass manager (per-pass spans), the
compilation cache (hit/miss/disk-hit counters), the native toolchain
(build spans, artifact-cache counters) and the batch queue (wait/dispatch
histograms, queue-depth gauge).  ``python -m repro.obs`` pretty-prints
snapshots and converts raw span dumps to Chrome-trace files.
"""

from repro.obs.clock import monotonic, monotonic_ns, repeat_timed, seconds_between
from repro.obs.export import (
    chrome_events,
    chrome_trace_document,
    export_chrome,
    format_metrics,
    metrics_snapshot,
    write_metrics,
)
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_time_buckets,
)
from repro.obs.profile import ProfiledCompiledSDFG, profile_compiled
from repro.obs.trace import (
    NOOP_SPAN,
    TRACER,
    SpanRecord,
    Tracer,
    disable,
    enable,
    is_enabled,
    load_spans,
    set_sampling,
    span,
)

__all__ = [
    "monotonic",
    "monotonic_ns",
    "seconds_between",
    "repeat_timed",
    "Tracer",
    "TRACER",
    "SpanRecord",
    "NOOP_SPAN",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "set_sampling",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "default_time_buckets",
    "chrome_events",
    "chrome_trace_document",
    "export_chrome",
    "format_metrics",
    "metrics_snapshot",
    "write_metrics",
    "ProfiledCompiledSDFG",
    "profile_compiled",
]
