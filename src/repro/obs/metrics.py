"""The metrics registry: counters, gauges and fixed-bucket histograms.

Three metric types, all thread-safe and all snapshot-able as plain JSON:

* :class:`Counter` — monotonically increasing event count (cache hits,
  dispatched batches, native artifact builds);
* :class:`Gauge` — a value that goes up and down (queue depth);
* :class:`Histogram` — fixed-bucket distribution of observations with
  p50/p95/p99 quantile estimation by linear interpolation inside the
  bucket containing the rank (enqueue-to-dispatch waits, per-kernel
  runtimes).  Bucket bounds are fixed at construction, so ``observe`` is a
  bisect plus a few adds — cheap enough for per-dispatch instrumentation.

A :class:`MetricsRegistry` is a name-keyed get-or-create store of those.
The process-wide default lives at :data:`METRICS`; every instrumented layer
(compilation cache, batch queue, native artifact cache, profiled kernels)
records into it, and ``benchmarks/_common.write_results`` stamps its
snapshot into every benchmark envelope.  ``reset`` zeroes metrics **in
place** so module-level references held by hot paths stay valid.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Optional, Sequence


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can move in both directions (e.g. queue depth)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


def default_time_buckets() -> list[float]:
    """Exponential bucket bounds for durations in seconds: 1µs .. ~67s,
    doubling each step.  Observations beyond the last bound land in the
    overflow bucket (quantiles there interpolate up to the observed max)."""
    return [1e-6 * 2.0 ** k for k in range(27)]


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``bounds[i]`` is the *inclusive upper* bound of bucket ``i``; one extra
    overflow bucket catches everything beyond the last bound.  Quantiles walk
    the cumulative counts to the bucket containing the requested rank and
    interpolate linearly between the bucket's bounds (clamped to the observed
    min/max, so a histogram fed a single value reports that value for every
    quantile).  Estimation error is therefore at most one bucket width.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str = "", buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds = sorted(buckets) if buckets is not None else default_time_buckets()
        if not self.bounds:
            raise ValueError("Histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observations;
        ``nan`` before the first observation."""
        if self.count == 0:
            return math.nan
        q = min(max(q, 0.0), 1.0)
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max  # pragma: no cover - rank beyond total is impossible

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = math.inf
            self.max = -math.inf

    def snapshot(self) -> dict:
        """JSON-serialisable summary (counts, sum, mean and key quantiles)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Name-keyed get-or-create store of counters, gauges and histograms.

    Asking for an existing name returns the existing instance (so call sites
    may cache references at import time); asking for an existing name *as a
    different type* raises.  ``reset`` zeroes every metric in place and
    ``snapshot`` returns one flat JSON-serialisable dict.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"Metric {name!r} is a {type(existing).__name__}, "
                        f"not a {cls.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every registered metric *in place* (references stay valid)."""
        for metric in list(self._metrics.values()):
            metric.reset()

    def snapshot(self) -> dict:
        """Flat JSON dict: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {count, mean, p50, ...}}}`` — the shape
        ``benchmarks/_common.write_results`` embeds into result envelopes."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.snapshot()
            elif isinstance(metric, Histogram):
                histograms[name] = metric.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Process-wide default registry every instrumented layer records into.
METRICS = MetricsRegistry()
