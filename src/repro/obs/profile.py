"""Opt-in runtime profiling of compiled kernels: ``repro.compile(..., profile=True)``.

:func:`profile_compiled` wraps a finished
:class:`~repro.codegen.CompiledSDFG` in a :class:`ProfiledCompiledSDFG`
whose every call is timed on the obs monotonic clock:

* the **total call** lands in the ``kernel.runtime.<sdfg>`` histogram (and,
  while tracing is enabled, as a ``kernel.execute`` span);
* under the native backend, every C-kernel segment is timed individually —
  the driver is re-``exec``-uted with timing trampolines around the ctypes
  calls (``CompiledSDFG.with_kernel_timers``) — giving per-segment
  ``kernel.segment.<sdfg>.<kernel>`` histograms plus the
  **native-vs-NumPy-driver split**: ``kernel.native.<sdfg>`` is the time
  spent inside C kernels and ``kernel.driver.<sdfg>`` the remainder spent
  in the NumPy driver (BLAS matmuls, softmax, glue).

The wrapper is created *outside* the compilation cache: the cache keeps the
unprofiled object, so ``profile=True`` never changes a cache key and a
profiled and an unprofiled handle to the same compilation coexist.  The
histograms live in the process-wide metrics registry **and** on the wrapper
(``.runtime_histogram``, ``.segment_histograms``) for direct inspection;
``.profile_snapshot()`` returns them as one JSON dict.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.clock import monotonic_ns
from repro.obs.metrics import METRICS, Histogram, MetricsRegistry
from repro.obs.trace import TRACER, Tracer


class ProfiledCompiledSDFG:
    """A compiled callable whose executions feed runtime histograms.

    Delegates everything except ``__call__`` / ``call_with_bindings`` to the
    wrapped compiled object (``source``, ``sdfg``, ``result_names``,
    ``pipeline_report``, ... all behave as before), so it drops into every
    place a :class:`~repro.codegen.CompiledSDFG` fits — including
    :class:`~repro.autodiff.GradientFunction` and
    :class:`~repro.batching.BatchQueue`.
    """

    def __init__(
        self,
        inner,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.inner = inner
        self._metrics = metrics if metrics is not None else METRICS
        self._tracer = tracer if tracer is not None else TRACER
        name = inner.sdfg.name
        self._name = name
        self.runtime_histogram: Histogram = self._metrics.histogram(
            f"kernel.runtime.{name}"
        )
        self.segment_histograms: dict[str, Histogram] = {}
        self._local = threading.local()
        timed = inner.with_kernel_timers(self._segment_sink)
        self._target = timed if timed is not None else inner
        self._has_segments = timed is not None
        if self._has_segments:
            self.native_histogram: Histogram = self._metrics.histogram(
                f"kernel.native.{name}"
            )
            self.driver_histogram: Histogram = self._metrics.histogram(
                f"kernel.driver.{name}"
            )

    # -- segment instrumentation ----------------------------------------
    def _segment_sink(self, kernel_name: str, start_ns: int, end_ns: int) -> None:
        """Called by the timing trampolines around each native C kernel."""
        seconds = (end_ns - start_ns) / 1e9
        histogram = self.segment_histograms.get(kernel_name)
        if histogram is None:
            histogram = self._metrics.histogram(
                f"kernel.segment.{self._name}.{kernel_name}"
            )
            self.segment_histograms[kernel_name] = histogram
        histogram.observe(seconds)
        accumulator = getattr(self._local, "native_seconds", None)
        if accumulator is not None:
            self._local.native_seconds = accumulator + seconds
        self._tracer.record(
            f"kernel.segment.{kernel_name}", start_ns, end_ns - start_ns,
            sdfg=self._name,
        )

    # -- execution -------------------------------------------------------
    def _timed(self, invoke):
        self._local.native_seconds = 0.0
        with self._tracer.span(
            "kernel.execute", sdfg=self._name, backend=self.inner.backend
        ):
            start_ns = monotonic_ns()
            result = invoke()
            seconds = (monotonic_ns() - start_ns) / 1e9
        self.runtime_histogram.observe(seconds)
        if self._has_segments:
            native = self._local.native_seconds
            self.native_histogram.observe(native)
            self.driver_histogram.observe(max(0.0, seconds - native))
        self._local.native_seconds = None
        return result

    def __call__(self, *args, **kwargs):
        return self._timed(lambda: self._target(*args, **kwargs))

    def call_with_bindings(self, bindings: dict) -> dict:
        return self._timed(lambda: self._target.call_with_bindings(bindings))

    # -- inspection ------------------------------------------------------
    def profile_snapshot(self) -> dict:
        """JSON dict of this callable's runtime histograms (total call,
        native/driver split and per-segment, where applicable)."""
        body = {"kernel": self._name, "backend": self.inner.backend,
                "runtime": self.runtime_histogram.snapshot()}
        if self._has_segments:
            body["native"] = self.native_histogram.snapshot()
            body["driver"] = self.driver_histogram.snapshot()
            body["segments"] = {
                name: histogram.snapshot()
                for name, histogram in sorted(self.segment_histograms.items())
            }
        return body

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"Profiled{self.inner!r}"


def profile_compiled(
    compiled,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
):
    """Wrap ``compiled`` for per-call runtime profiling (idempotent)."""
    if isinstance(compiled, ProfiledCompiledSDFG):
        return compiled
    return ProfiledCompiledSDFG(compiled, metrics=metrics, tracer=tracer)
