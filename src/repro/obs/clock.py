"""The single monotonic clock every repro timing path reads.

One clock, three consumers:

* the tracing core (:mod:`repro.obs.trace`) stamps span begin/end with
  :func:`monotonic_ns`;
* the pass manager derives ``PassRecord.seconds`` from the same counter, so
  pipeline-report rows and trace spans agree to the nanosecond;
* the repeated-measurement helpers (:func:`repeat_timed`, backing both
  ``repro.util.timing.measure_callable`` and ``repro.harness.measure``) use
  it for benchmark loops.

``time.perf_counter_ns`` is monotonic, never adjusted by NTP, and integer —
no float rounding at nanosecond resolution.  Timestamps are only meaningful
*within* one process; exporters (Chrome trace) treat them as offsets from an
arbitrary epoch, which is exactly what the format expects.
"""

from __future__ import annotations

import time
from typing import Any, Callable

#: The raw monotonic counter (nanoseconds since an arbitrary epoch).
monotonic_ns = time.perf_counter_ns


def monotonic() -> float:
    """Monotonic seconds as a float (for callers that prefer seconds)."""
    return time.perf_counter_ns() / 1e9


def seconds_between(start_ns: int, end_ns: int) -> float:
    """Convert a pair of :func:`monotonic_ns` stamps into float seconds."""
    return (end_ns - start_ns) / 1e9


def repeat_timed(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> tuple[list[float], Any]:
    """Run ``fn`` with ``warmup`` unmeasured calls then ``repeats`` measured
    calls; returns the individual wall times (seconds) and the last value.

    This is the one repeated-measurement loop in the code base: both
    ``repro.util.timing.measure_callable`` and ``repro.harness.measure``
    wrap it, so every benchmark number comes off the same clock as the
    tracer's spans.
    """
    value: Any = None
    for _ in range(max(0, warmup)):
        value = fn()
    times: list[float] = []
    for _ in range(max(1, repeats)):
        start = monotonic_ns()
        value = fn()
        times.append((monotonic_ns() - start) / 1e9)
    return times, value
