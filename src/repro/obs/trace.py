"""The structured tracing core: nestable spans on a monotonic clock.

A *span* is a named, attributed interval of wall time.  Code opens spans
with the :func:`span` context manager::

    with span("pipeline.map-fusion", pipeline="forward-O2"):
        ...

Spans nest: each thread keeps its own span stack (``threading.local``), so
concurrent pipelines and the batch-queue worker trace independently, and a
span records its nesting ``depth`` at entry.  Finished spans land in the
process-wide :class:`Tracer`'s bounded ring buffer (a ``deque`` with
``maxlen`` — long-running servers never grow without bound; old spans fall
off the back).

Tracing is **off by default** and the disabled path is as close to free as
Python allows: :func:`span` checks one attribute and returns a shared no-op
context manager — no allocation, no clock read, no buffer traffic
(``benchmarks/bench_obs_overhead.py`` gates this at <= 3% on a warm kernel
loop).  Enable with :func:`enable` (or ``Tracer.enable``), snapshot with
``Tracer.spans()``, and convert to a Chrome-trace file with
:func:`repro.obs.export.export_chrome` for the Perfetto UI.
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from typing import Optional

from repro.obs.clock import monotonic_ns


class SpanRecord:
    """One finished span: name, interval, thread identity, nesting depth and
    free-form attributes."""

    __slots__ = ("name", "start_ns", "duration_ns", "thread_id", "thread_name",
                 "depth", "attrs")

    def __init__(self, name: str, start_ns: int, duration_ns: int,
                 thread_id: int, thread_name: str, depth: int, attrs: dict) -> None:
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.depth = depth
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            start_ns=payload["start_ns"],
            duration_ns=payload["duration_ns"],
            thread_id=payload.get("thread_id", 0),
            thread_name=payload.get("thread_name", ""),
            depth=payload.get("depth", 0),
            attrs=dict(payload.get("attrs", {})),
        )

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, {self.duration_ns / 1e6:.3f} ms, "
                f"depth={self.depth})")


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; created by ``Tracer.span`` only while tracing is on."""

    __slots__ = ("tracer", "name", "attrs", "start_ns", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.depth = 0

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. a batch's padded size)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        self.depth = len(stack)
        stack.append(self)
        self.start_ns = monotonic_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        end_ns = monotonic_ns()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order (generator-held span)
            stack.remove(self)
        thread = threading.current_thread()
        self.tracer._buffer.append(
            SpanRecord(
                name=self.name,
                start_ns=self.start_ns,
                duration_ns=end_ns - self.start_ns,
                thread_id=thread.ident or 0,
                thread_name=thread.name,
                depth=self.depth,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Process-wide span collector with bounded ring-buffer retention.

    ``capacity`` bounds the number of retained spans (oldest dropped first).
    Thread safety: span stacks are thread-local and ``deque.append`` is
    atomic, so concurrent spans from many threads interleave safely.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = False) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self.sample_rate = 1.0
        self._sample_rng = random.Random()
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._local = threading.local()

    # -- lifecycle -------------------------------------------------------
    def enable(self, capacity: Optional[int] = None) -> "Tracer":
        """Turn tracing on (optionally resizing the ring buffer)."""
        if capacity is not None and capacity != self.capacity:
            self.capacity = capacity
            self._buffer = deque(self._buffer, maxlen=capacity)
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def set_sampling(self, rate: float, seed: Optional[int] = None) -> "Tracer":
        """Keep only ``rate`` of spans (0.0–1.0) while tracing is enabled.

        High-QPS serving traces every dispatch; sampling keeps the ring
        buffer representative without paying full per-span cost.  Each
        candidate span is kept independently with probability ``rate``
        (nesting is not preserved across the cut — a kept child may have a
        dropped parent).  ``seed`` makes the keep/drop sequence
        deterministic for tests and fixed-seed campaigns; ``rate=1.0``
        restores record-everything."""
        self.sample_rate = min(max(float(rate), 0.0), 1.0)
        if seed is not None:
            self._sample_rng = random.Random(seed)
        return self

    def _sampled(self) -> bool:
        return (
            self.sample_rate >= 1.0
            or self._sample_rng.random() < self.sample_rate
        )

    def clear(self) -> None:
        self._buffer.clear()

    # -- recording -------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs):
        """A context manager tracing one interval (no-op while disabled or
        dropped by sampling)."""
        if not self.enabled or not self._sampled():
            return NOOP_SPAN
        return _Span(self, name, attrs)

    def record(self, name: str, start_ns: int, duration_ns: int, **attrs) -> None:
        """Append an already-timed interval (for instrumentation that must
        time unconditionally and only *report* when tracing is on)."""
        if not self.enabled or not self._sampled():
            return
        thread = threading.current_thread()
        self._buffer.append(
            SpanRecord(
                name=name,
                start_ns=start_ns,
                duration_ns=duration_ns,
                thread_id=thread.ident or 0,
                thread_name=thread.name,
                depth=len(self._stack()),
                attrs=attrs,
            )
        )

    def current_depth(self) -> int:
        """Open-span nesting depth of the calling thread."""
        return len(self._stack())

    # -- inspection ------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """Snapshot of the retained spans, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    # -- persistence -----------------------------------------------------
    def save(self, path: str) -> str:
        """Dump the raw span buffer as JSON (convert to a Chrome trace later
        with ``python -m repro.obs chrome <path>``)."""
        payload = {
            "format": "repro-obs-spans",
            "clock": "perf_counter_ns",
            "spans": [record.to_dict() for record in self.spans()],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return path

    def export_chrome(self, path: str) -> str:
        """Write the retained spans as a Chrome-trace/Perfetto JSON file."""
        from repro.obs.export import export_chrome

        return export_chrome(path, spans=self.spans())

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self._buffer)}/{self.capacity} spans)"


def load_spans(path: str) -> list[SpanRecord]:
    """Read a raw span dump written by :meth:`Tracer.save`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != "repro-obs-spans":
        raise ValueError(f"{path} is not a repro.obs raw span dump")
    return [SpanRecord.from_dict(item) for item in payload.get("spans", [])]


#: Process-wide default tracer (off until :func:`enable`).
TRACER = Tracer()


def span(name: str, **attrs):
    """Open a span on the default tracer (no-op while tracing is disabled)."""
    tracer = TRACER
    if not tracer.enabled or not tracer._sampled():
        return NOOP_SPAN
    return _Span(tracer, name, attrs)


def enable(capacity: Optional[int] = None) -> Tracer:
    """Turn on the default tracer and return it."""
    return TRACER.enable(capacity)


def disable() -> Tracer:
    """Turn off the default tracer and return it."""
    return TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def set_sampling(rate: float, seed: Optional[int] = None) -> Tracer:
    """Set the default tracer's span sampling rate (see
    :meth:`Tracer.set_sampling`)."""
    return TRACER.set_sampling(rate, seed)
