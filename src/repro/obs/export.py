"""Exporters: Chrome-trace/Perfetto JSON for spans, flat JSON for metrics.

Chrome trace event format (the *JSON Array Format* with complete ``"X"``
events) loads directly in ``chrome://tracing`` and https://ui.perfetto.dev:
every span becomes one event carrying ``name``/``cat``/``ph``/``ts``/
``dur``/``pid``/``tid`` with the span attributes under ``args``.
Timestamps are microseconds on the tracer's monotonic clock (an arbitrary
epoch — the viewers only care about relative time); nesting is implicit
from per-``tid`` timestamp containment, which is exactly how the span
stacks nested at record time.

Metrics export is simpler: :func:`metrics_snapshot` returns the registry's
flat JSON dict (the same shape ``benchmarks/_common.write_results`` stamps
into benchmark envelopes) and :func:`write_metrics` writes it to a file.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Sequence

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import TRACER, SpanRecord, Tracer


def chrome_events(spans: Sequence[SpanRecord], pid: Optional[int] = None) -> list[dict]:
    """Map span records to Chrome-trace complete events (``ph="X"``)."""
    pid = pid if pid is not None else os.getpid()
    events = []
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start_ns / 1e3,
                "dur": record.duration_ns / 1e3,
                "pid": pid,
                "tid": record.thread_id,
                "args": dict(record.attrs, depth=record.depth),
            }
        )
    return events


def chrome_trace_document(spans: Sequence[SpanRecord], pid: Optional[int] = None) -> dict:
    """The full Chrome-trace JSON object for ``spans`` (with thread-name
    metadata so Perfetto labels tracks by thread)."""
    pid = pid if pid is not None else os.getpid()
    events = chrome_events(spans, pid=pid)
    seen: dict[int, str] = {}
    for record in spans:
        if record.thread_id not in seen and record.thread_name:
            seen[record.thread_id] = record.thread_name
    for tid, name in sorted(seen.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome(
    path: str,
    tracer: Optional[Tracer] = None,
    spans: Optional[Sequence[SpanRecord]] = None,
) -> str:
    """Write a Chrome-trace/Perfetto JSON file and return its path.

    ``spans`` wins when given; otherwise the spans of ``tracer`` (default:
    the process-wide tracer) are exported.
    """
    if spans is None:
        spans = (tracer or TRACER).spans()
    document = chrome_trace_document(spans)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path


def metrics_snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """Flat JSON dict of the registry's current state (default registry
    when none is given)."""
    return (registry or METRICS).snapshot()


def write_metrics(path: str, registry: Optional[MetricsRegistry] = None) -> str:
    """Write :func:`metrics_snapshot` to ``path`` as JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(metrics_snapshot(registry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_metrics(snapshot: dict) -> str:
    """Plain-text rendering of a metrics snapshot (the CLI's pretty-printer)."""
    from repro.harness.report import format_table

    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    scalar_rows = [[name, value] for name, value in sorted(counters.items())]
    scalar_rows += [[name, value] for name, value in sorted(gauges.items())]
    if scalar_rows:
        lines.append(format_table(["metric", "value"], scalar_rows,
                                  title="counters & gauges"))
    histogram_rows = []
    for name, body in sorted(histograms.items()):
        if not body.get("count"):
            histogram_rows.append([name, 0, None, None, None, None, None])
            continue
        histogram_rows.append([
            name,
            body["count"],
            body["mean"] * 1e3,
            body["p50"] * 1e3,
            body["p95"] * 1e3,
            body["p99"] * 1e3,
            body["max"] * 1e3,
        ])
    if histogram_rows:
        if lines:
            lines.append("")
        lines.append(format_table(
            ["histogram", "n", "mean [ms]", "p50 [ms]", "p95 [ms]",
             "p99 [ms]", "max [ms]"],
            histogram_rows,
            title="histograms (values scaled as milliseconds)",
        ))
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
