"""Observability CLI: ``python -m repro.obs <command>``.

Commands:

* ``snapshot [FILE]`` — pretty-print a metrics snapshot.  ``FILE`` may be a
  raw snapshot (``repro.obs.write_metrics``) or any benchmark envelope
  written by ``benchmarks/_common.write_results`` (the snapshot is read
  from its ``"metrics"`` key).  Without a file, the live process registry
  is printed (mostly useful after ``demo``).
* ``chrome IN [-o OUT]`` — convert a raw span dump (``Tracer.save``) into a
  Chrome-trace/Perfetto JSON file (default ``IN`` with a ``.trace.json``
  suffix) loadable at https://ui.perfetto.dev.
* ``demo [--out DIR]`` — run a small instrumented workload (an O2 compile
  with ``profile=True`` plus a batched-serving round through
  ``BatchQueue``), then write ``obs_demo_metrics.json``,
  ``obs_demo_spans.json`` and ``obs_demo.trace.json`` into ``DIR``
  (default ``benchmarks/results/``) and print the metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.obs import format_metrics, metrics_snapshot

    if args.file:
        with open(args.file) as handle:
            payload = json.load(handle)
        snapshot = payload.get("metrics", payload)
        if not isinstance(snapshot, dict) or "counters" not in snapshot:
            print(f"{args.file}: no metrics snapshot found", file=sys.stderr)
            return 1
    else:
        snapshot = metrics_snapshot()
    print(format_metrics(snapshot))
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    from repro.obs import export_chrome, load_spans

    spans = load_spans(args.input)
    out = args.output or f"{os.path.splitext(args.input)[0]}.trace.json"
    export_chrome(out, spans=spans)
    print(f"{len(spans)} spans -> {out}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    import repro
    from repro import obs
    from repro.npbench import get_kernel

    out_dir = args.out or os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"
    )
    os.makedirs(out_dir, exist_ok=True)
    obs.enable()
    spec = get_kernel("bias_act")
    data = spec.data("S")
    program = spec.program_for("S")

    compiled = repro.compile(program, optimize="O2", profile=True, cache=False)
    for _ in range(3):
        compiled(**{key: np.copy(value) for key, value in data.items()})

    batched = repro.vmap(program, in_axes={"x": 0, "r": 0, "bias": None})
    batched_fn = batched.compile(optimize="O2")
    with repro.BatchQueue(batched_fn, max_batch=8, max_wait_ms=1.0,
                          static_kwargs={"bias": data["bias"]}) as queue:
        futures = [
            queue.submit(x=np.copy(data["x"]), r=np.copy(data["r"]))
            for _ in range(8)
        ]
        for future in futures:
            future.result()

    metrics_path = obs.write_metrics(os.path.join(out_dir, "obs_demo_metrics.json"))
    spans_path = obs.TRACER.save(os.path.join(out_dir, "obs_demo_spans.json"))
    trace_path = obs.export_chrome(os.path.join(out_dir, "obs_demo.trace.json"))
    print(obs.format_metrics(obs.metrics_snapshot()))
    print()
    print(f"metrics  -> {metrics_path}")
    print(f"spans    -> {spans_path}")
    print(f"trace    -> {trace_path} (load in https://ui.perfetto.dev)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro observability data.",
    )
    commands = parser.add_subparsers(dest="command")

    snapshot = commands.add_parser("snapshot", help="pretty-print a metrics snapshot")
    snapshot.add_argument("file", nargs="?", help="snapshot or benchmark-envelope JSON")
    snapshot.set_defaults(func=_cmd_snapshot)

    chrome = commands.add_parser("chrome", help="raw span dump -> Chrome trace")
    chrome.add_argument("input", help="raw span dump written by Tracer.save")
    chrome.add_argument("-o", "--output", help="output path (.trace.json)")
    chrome.set_defaults(func=_cmd_chrome)

    demo = commands.add_parser("demo", help="run an instrumented demo workload")
    demo.add_argument("--out", help="output directory (default benchmarks/results/)")
    demo.set_defaults(func=_cmd_demo)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 0
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
