"""Dataflow nodes.

The paper's SDFG has access nodes, tasklets, map entry/exit pairs and library
nodes.  This reproduction fuses a map scope and the tasklet inside it into a
single :class:`MapCompute` node (iteration domain + symbolic expression +
memlets); a scalar tasklet is simply a :class:`MapCompute` with an empty
domain.  Library nodes (:class:`LibraryCall`) represent operations expanded to
optimised library calls during code generation (matmul -> BLAS ``np.dot``,
convolutions, pooling, reductions, ...).

Every compute node records exactly which data it reads and writes through
:class:`~repro.ir.memlet.Memlet` objects - this is the property that makes
the CCS extraction and reversal of Section II/III possible.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional

from repro.ir.memlet import Memlet
from repro.ir.subsets import Range
from repro.symbolic import Expr

_node_counter = itertools.count()


class Node:
    """Base class of all dataflow nodes; identity-based equality."""

    def __init__(self, label: str = "") -> None:
        self.node_id: int = next(_node_counter)
        self.label = label or f"{type(self).__name__.lower()}_{self.node_id}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class AccessNode(Node):
    """Reference to a data container inside a state (read and/or written)."""

    def __init__(self, data: str) -> None:
        super().__init__(label=data)
        self.data = data


class ComputeNode(Node):
    """Base class for nodes that perform computation.

    Attributes
    ----------
    inputs:
        Mapping from input connector name to the memlet read through it.
    output:
        Memlet written by this node (a single output container; the write may
        be accumulating).
    """

    def __init__(
        self,
        inputs: Mapping[str, Memlet],
        output: Memlet,
        label: str = "",
    ) -> None:
        super().__init__(label=label)
        self.inputs: dict[str, Memlet] = dict(inputs)
        self.output: Memlet = output

    # -- dataflow queries -------------------------------------------------
    def read_data(self) -> set[str]:
        return {memlet.data for memlet in self.inputs.values()}

    def written_data(self) -> str:
        return self.output.data

    def input_memlets_for(self, data: str) -> list[tuple[str, Memlet]]:
        return [(conn, m) for conn, m in self.inputs.items() if m.data == data]

    def free_symbols(self) -> set[str]:
        symbols: set[str] = set()
        for memlet in self.inputs.values():
            symbols |= memlet.free_symbols()
        symbols |= self.output.free_symbols()
        return symbols


class MapCompute(ComputeNode):
    """A parallel map over an iteration domain applying one symbolic tasklet.

    ``params`` and ``ranges`` define the (possibly empty) parallel iteration
    space, exactly like an SDFG Map.  ``expr`` is the tasklet: a scalar
    symbolic expression over the input connector names, the map parameters
    and the SDFG symbols.  Each evaluation writes one element of the output
    memlet (or accumulates into it when ``output.accumulate`` is set).

    An empty domain (``params == ()``) is a plain scalar tasklet.
    """

    def __init__(
        self,
        params: Iterable[str],
        ranges: Iterable[Range],
        expr: Expr,
        inputs: Mapping[str, Memlet],
        output: Memlet,
        label: str = "",
    ) -> None:
        super().__init__(inputs, output, label=label)
        self.params: tuple[str, ...] = tuple(params)
        self.ranges: tuple[Range, ...] = tuple(ranges)
        if len(self.params) != len(self.ranges):
            raise ValueError("MapCompute needs one range per map parameter")
        self.expr: Expr = expr

    @property
    def is_scalar_tasklet(self) -> bool:
        return len(self.params) == 0

    def free_symbols(self) -> set[str]:
        symbols = super().free_symbols()
        symbols |= self.expr.free_symbols()
        for rng in self.ranges:
            symbols |= rng.free_symbols()
        symbols -= set(self.params)
        symbols -= set(self.inputs)
        return symbols

    def __repr__(self) -> str:
        domain = ", ".join(
            f"{p}=[{r.start!r}:{r.stop!r}:{r.step!r}]" for p, r in zip(self.params, self.ranges)
        )
        return f"MapCompute({self.label!r}, [{domain}] -> {self.output.data})"


#: Library node kinds understood by the code generator and the AD engine.
LIBRARY_KINDS = {
    "matmul",       # C (+)= op(A) @ op(B); attrs: transpose_a, transpose_b
    "reduce_sum",   # out (+)= sum(A) or sum(A, axis=k); attrs: axis, keepdims
    "reduce_max",   # out = max(A[, axis=k]); attrs: axis, keepdims
    "reduce_min",   # out = min(A[, axis=k]); attrs: axis, keepdims
    "transpose",    # out = A.T (2-D)
    "copy",         # out[subset] (+)= A[subset]
    "conv2d",       # out = conv2d(input, weights) + bias; attrs: stride, padding
    "maxpool2d",    # out = maxpool(input); attrs: window
    "relu",         # out = max(input, 0)
    "softmax",      # out = softmax(input, axis=-1)
    "flatten",      # out = reshape(input, (batch, -1))
    "outer",        # out (+)= outer(a, b) for 1-D a, b
    # Backward (adjoint) library nodes emitted by the AD engine:
    "softmax_backward",        # gin (+)= softmax_backward(gout, y)
    "conv2d_backward_input",   # gin (+)= conv2d_backward_input(gout, w, shape)
    "conv2d_backward_weights", # gw (+)= conv2d_backward_weights(gout, x, shape)
    "conv2d_backward_bias",    # gb (+)= conv2d_backward_bias(gout)
    "maxpool2d_backward",      # gin (+)= maxpool2d_backward(gout, x)
}


class LibraryCall(ComputeNode):
    """Specialised node expanded into an optimised library call at codegen.

    ``kind`` selects the operation (see :data:`LIBRARY_KINDS`); ``attrs``
    carries per-kind parameters (transposition flags, reduction axis,
    convolution stride/padding, pooling window, ...).
    """

    def __init__(
        self,
        kind: str,
        inputs: Mapping[str, Memlet],
        output: Memlet,
        attrs: Optional[dict] = None,
        label: str = "",
    ) -> None:
        if kind not in LIBRARY_KINDS:
            raise ValueError(f"Unknown library node kind {kind!r}")
        super().__init__(inputs, output, label=label or kind)
        self.kind = kind
        self.attrs: dict = dict(attrs or {})

    def __repr__(self) -> str:
        return f"LibraryCall({self.kind!r} -> {self.output.data})"
