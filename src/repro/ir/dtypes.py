"""Data types used by the IR.

Thin wrappers around NumPy dtypes so the rest of the code base can talk about
types without importing NumPy everywhere, plus helpers used by the memory
model of the ILP checkpointing pass (itemsize in bytes).
"""

from __future__ import annotations

import numpy as np

float32 = np.dtype(np.float32)
float64 = np.dtype(np.float64)
int32 = np.dtype(np.int32)
int64 = np.dtype(np.int64)
boolean = np.dtype(np.bool_)

_ALIASES = {
    "float": float64,
    "double": float64,
    "float64": float64,
    "float32": float32,
    "single": float32,
    "int": int64,
    "int64": int64,
    "int32": int32,
    "bool": boolean,
    "boolean": boolean,
}


def as_dtype(value) -> np.dtype:
    """Coerce strings, Python types and NumPy dtypes to a canonical dtype."""
    if isinstance(value, np.dtype):
        return value
    if isinstance(value, str):
        if value in _ALIASES:
            return _ALIASES[value]
        return np.dtype(value)
    return np.dtype(value)


def dtype_to_str(dtype: np.dtype) -> str:
    """Stable string name for serialisation."""
    return np.dtype(dtype).name


def itemsize_bytes(dtype) -> int:
    """Size of one element in bytes."""
    return int(np.dtype(as_dtype(dtype)).itemsize)
