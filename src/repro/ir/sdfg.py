"""The SDFG container.

An :class:`SDFG` owns the data descriptors, the size symbols and the root
control-flow region.  It also provides unique-name generation (gradients,
tapes and temporaries all get registered here), deep copies, DOT export and
JSON serialisation.
"""

from __future__ import annotations

import copy as _copy
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.ir.arrays import ArrayDesc
from repro.ir.control_flow import (
    ConditionalRegion,
    ControlFlowElement,
    ControlFlowRegion,
    LoopRegion,
)
from repro.ir.dtypes import as_dtype
from repro.ir.state import State
from repro.util import NameGenerator
from repro.util.errors import ValidationError


class SDFG:
    """Stateful-dataflow-multigraph-like program representation.

    Attributes
    ----------
    name:
        Program name (used for generated code and debugging).
    arrays:
        Mapping container name -> :class:`ArrayDesc`.
    symbols:
        Ordered mapping of scalar integer size parameters (``N``, ``TSTEPS``)
        to their dtype.  Symbols are bound to concrete values at call time.
    arg_names:
        Call-signature order of non-transient containers and symbols.
    root:
        Top-level control-flow region.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.arrays: dict[str, ArrayDesc] = {}
        self.symbols: dict[str, np.dtype] = {}
        self.arg_names: list[str] = []
        self.root = ControlFlowRegion(label=f"{name}_root")
        self._names = NameGenerator()
        self._state_counter = 0

    # -- data management ---------------------------------------------------
    def add_array(
        self,
        name: str,
        shape: Iterable = (),
        dtype="float64",
        transient: bool = False,
        zero_init: bool = False,
        find_new_name: bool = False,
    ) -> ArrayDesc:
        """Register a data container.  With ``find_new_name`` a fresh unique
        name derived from ``name`` is chosen instead of failing on collision."""
        if name in self.arrays:
            if not find_new_name:
                raise ValidationError(f"Array {name!r} already exists in SDFG {self.name!r}")
            name = self._names.fresh(name)
        else:
            self._names.reserve(name)
        desc = ArrayDesc(
            name=name,
            shape=tuple(shape),
            dtype=as_dtype(dtype),
            transient=transient,
            zero_init=zero_init,
        )
        self.arrays[name] = desc
        return desc

    def add_transient(self, name: str, shape: Iterable = (), dtype="float64",
                      zero_init: bool = False) -> ArrayDesc:
        """Register a transient (SDFG-allocated) container with a fresh name."""
        return self.add_array(
            name, shape, dtype, transient=True, zero_init=zero_init, find_new_name=True
        )

    def add_scalar(self, name: str, dtype="float64", transient: bool = False) -> ArrayDesc:
        return self.add_array(name, (), dtype, transient=transient, find_new_name=transient)

    def add_symbol(self, name: str, dtype="int64") -> str:
        if name not in self.symbols:
            self.symbols[name] = as_dtype(dtype)
            self._names.reserve(name)
        return name

    def make_name(self, prefix: str) -> str:
        """Fresh identifier that collides with no container or symbol."""
        return self._names.fresh(prefix)

    # -- structure ----------------------------------------------------------
    def add_state(self, label: str = "") -> State:
        """Append a new state to the root region."""
        self._state_counter += 1
        return self.root.add_state(label or f"state_{self._state_counter}")

    def all_states(self) -> Iterator[State]:
        return self.root.all_states()

    def all_elements(self) -> Iterator[ControlFlowElement]:
        return self.root.all_elements()

    def all_loops(self) -> Iterator[LoopRegion]:
        for element in self.all_elements():
            if isinstance(element, LoopRegion):
                yield element

    def all_conditionals(self) -> Iterator[ConditionalRegion]:
        for element in self.all_elements():
            if isinstance(element, ConditionalRegion):
                yield element

    # -- queries --------------------------------------------------------------
    @property
    def argument_arrays(self) -> list[str]:
        """Non-transient containers in signature order."""
        return [name for name in self.arg_names if name in self.arrays]

    @property
    def argument_symbols(self) -> list[str]:
        return [name for name in self.arg_names if name in self.symbols]

    def transients(self) -> list[str]:
        return [name for name, desc in self.arrays.items() if desc.transient]

    def container_uses(self):
        """Per-container read/write sites in program order — see
        :func:`repro.ir.usage.collect_uses`.  Recomputed on every call;
        passes that mutate the SDFG must refresh it."""
        from repro.ir.usage import collect_uses

        return collect_uses(self)

    def free_symbols(self) -> set[str]:
        """Symbols referenced anywhere (shapes, memlets, loop bounds)."""
        result: set[str] = set()
        for desc in self.arrays.values():
            result |= desc.free_symbols()
        for element in self.all_elements():
            if isinstance(element, LoopRegion):
                result |= element.start.free_symbols()
                result |= element.stop.free_symbols()
                result |= element.step.free_symbols()
            elif isinstance(element, ConditionalRegion):
                for cond, _ in element.branches:
                    if cond is not None:
                        result |= cond.free_symbols()
            elif isinstance(element, State):
                for node in element:
                    result |= node.free_symbols()
        return result

    # -- utilities ------------------------------------------------------------
    def copy(self) -> "SDFG":
        """Deep copy (used before destructive transformations such as AD)."""
        return _copy.deepcopy(self)

    def validate(self) -> None:
        from repro.ir.validation import validate_sdfg

        validate_sdfg(self)

    def to_dot(self) -> str:
        from repro.ir.dot import sdfg_to_dot

        return sdfg_to_dot(self)

    def to_dict(self) -> dict:
        from repro.ir.serialize import sdfg_to_dict

        return sdfg_to_dict(self)

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON serialisation of the SDFG.

        Two structurally identical SDFGs (e.g. an SDFG and its deep copy) hash
        equally; any mutation of arrays, symbols, control flow or compute nodes
        changes the hash.  The compilation cache uses this as its key.
        """
        import hashlib
        import json

        from repro.ir.serialize import sdfg_to_dict

        payload = {
            "sdfg": sdfg_to_dict(self),
            # Not part of the serialised form but it changes what codegen emits.
            "return_name": getattr(self, "return_name", None),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"SDFG({self.name!r}, {len(self.arrays)} arrays, "
            f"{sum(1 for _ in self.all_states())} states)"
        )
