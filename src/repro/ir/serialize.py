"""JSON-compatible serialisation of SDFGs.

Expressions are serialised as Python source strings (round-tripped through
``repro.symbolic.parse_expr``), which keeps the format readable and diffable.
Serialisation exists mainly so users can snapshot generated forward/backward
SDFGs and inspect them offline; it is exercised by the test suite as a
round-trip invariant.
"""

from __future__ import annotations

from repro.ir.arrays import ArrayDesc
from repro.ir.control_flow import ConditionalRegion, ControlFlowRegion, LoopRegion
from repro.ir.dtypes import dtype_to_str
from repro.ir.memlet import Memlet
from repro.ir.nodes import LibraryCall, MapCompute
from repro.ir.sdfg import SDFG
from repro.ir.state import State
from repro.ir.subsets import Index, Range, Subset
from repro.symbolic import Expr, parse_expr, to_python


def _expr_to_str(expr) -> str:
    if isinstance(expr, Expr):
        return to_python(expr)
    return repr(expr)


def _subset_to_dict(subset: Subset | None):
    if subset is None:
        return None
    dims = []
    for dim in subset:
        if isinstance(dim, Index):
            dims.append({"kind": "index", "value": _expr_to_str(dim.value)})
        else:
            dims.append(
                {
                    "kind": "range",
                    "start": _expr_to_str(dim.start),
                    "stop": _expr_to_str(dim.stop),
                    "step": _expr_to_str(dim.step),
                }
            )
    return dims


def _subset_from_dict(data) -> Subset | None:
    if data is None:
        return None
    dims = []
    for dim in data:
        if dim["kind"] == "index":
            dims.append(Index(parse_expr(dim["value"])))
        else:
            dims.append(
                Range(parse_expr(dim["start"]), parse_expr(dim["stop"]), parse_expr(dim["step"]))
            )
    return Subset(dims)


def _memlet_to_dict(memlet: Memlet) -> dict:
    return {
        "data": memlet.data,
        "subset": _subset_to_dict(memlet.subset),
        "accumulate": memlet.accumulate,
    }


def _memlet_from_dict(data: dict) -> Memlet:
    return Memlet(data["data"], _subset_from_dict(data["subset"]), data["accumulate"])


def _node_to_dict(node) -> dict:
    base = {
        "label": node.label,
        "inputs": {conn: _memlet_to_dict(memlet) for conn, memlet in node.inputs.items()},
        "output": _memlet_to_dict(node.output),
    }
    if isinstance(node, MapCompute):
        base["type"] = "map"
        base["params"] = list(node.params)
        base["ranges"] = [
            {
                "start": _expr_to_str(r.start),
                "stop": _expr_to_str(r.stop),
                "step": _expr_to_str(r.step),
            }
            for r in node.ranges
        ]
        base["expr"] = _expr_to_str(node.expr)
    elif isinstance(node, LibraryCall):
        base["type"] = "library"
        base["kind"] = node.kind
        base["attrs"] = dict(node.attrs)
    else:  # pragma: no cover - no other node types exist
        raise TypeError(f"Cannot serialise node {node!r}")
    return base


def _node_from_dict(data: dict):
    inputs = {conn: _memlet_from_dict(memlet) for conn, memlet in data["inputs"].items()}
    output = _memlet_from_dict(data["output"])
    if data["type"] == "map":
        ranges = [
            Range(parse_expr(r["start"]), parse_expr(r["stop"]), parse_expr(r["step"]))
            for r in data["ranges"]
        ]
        return MapCompute(
            data["params"], ranges, parse_expr(data["expr"]), inputs, output, label=data["label"]
        )
    return LibraryCall(data["kind"], inputs, output, attrs=data["attrs"], label=data["label"])


def _state_to_dict(state: State) -> dict:
    return {
        "type": "state",
        "label": state.label,
        "nodes": [_node_to_dict(node) for node in state],
    }


def _element_to_dict(element) -> dict:
    if isinstance(element, State):
        return _state_to_dict(element)
    if isinstance(element, LoopRegion):
        return {
            "type": "loop",
            "label": element.label,
            "itervar": element.itervar,
            "start": _expr_to_str(element.start),
            "stop": _expr_to_str(element.stop),
            "step": _expr_to_str(element.step),
            "body": _region_to_dict(element.body),
        }
    if isinstance(element, ConditionalRegion):
        return {
            "type": "conditional",
            "label": element.label,
            "branches": [
                {
                    "condition": _expr_to_str(cond) if cond is not None else None,
                    "body": _region_to_dict(region),
                }
                for cond, region in element.branches
            ],
        }
    raise TypeError(f"Cannot serialise element {element!r}")


def _region_to_dict(region: ControlFlowRegion) -> dict:
    return {
        "label": region.label,
        "elements": [_element_to_dict(element) for element in region.elements],
    }


def _element_from_dict(data: dict):
    if data["type"] == "state":
        state = State(data["label"])
        for node_data in data["nodes"]:
            state.add(_node_from_dict(node_data))
        return state
    if data["type"] == "loop":
        loop = LoopRegion(
            data["itervar"],
            parse_expr(data["start"]),
            parse_expr(data["stop"]),
            parse_expr(data["step"]),
            label=data["label"],
        )
        loop.body = _region_from_dict(data["body"])
        return loop
    if data["type"] == "conditional":
        cond = ConditionalRegion(label=data["label"])
        for branch in data["branches"]:
            condition = parse_expr(branch["condition"]) if branch["condition"] else None
            region = cond.add_branch(condition)
            restored = _region_from_dict(branch["body"])
            region.elements = restored.elements
            region.label = restored.label
        return cond
    raise TypeError(f"Cannot deserialise element {data!r}")


def _region_from_dict(data: dict) -> ControlFlowRegion:
    region = ControlFlowRegion(label=data["label"])
    for element_data in data["elements"]:
        region.add(_element_from_dict(element_data))
    return region


def sdfg_to_dict(sdfg: SDFG) -> dict:
    """Serialise an SDFG to a JSON-compatible dictionary."""
    return {
        "name": sdfg.name,
        "arrays": {
            name: {
                "shape": [_expr_to_str(dim) if isinstance(dim, Expr) else dim for dim in desc.shape],
                "dtype": dtype_to_str(desc.dtype),
                "transient": desc.transient,
                "zero_init": desc.zero_init,
            }
            for name, desc in sdfg.arrays.items()
        },
        "symbols": {name: dtype_to_str(dtype) for name, dtype in sdfg.symbols.items()},
        "arg_names": list(sdfg.arg_names),
        "root": _region_to_dict(sdfg.root),
    }


def sdfg_from_dict(data: dict) -> SDFG:
    """Rebuild an SDFG from :func:`sdfg_to_dict` output."""
    sdfg = SDFG(data["name"])
    for name, dtype in data["symbols"].items():
        sdfg.add_symbol(name, dtype)
    for name, desc in data["arrays"].items():
        shape = tuple(
            parse_expr(dim) if isinstance(dim, str) else dim for dim in desc["shape"]
        )
        sdfg.add_array(
            name,
            shape,
            desc["dtype"],
            transient=desc["transient"],
            zero_init=desc["zero_init"],
        )
    sdfg.arg_names = list(data["arg_names"])
    restored = _region_from_dict(data["root"])
    sdfg.root.elements = restored.elements
    sdfg.root.label = restored.label
    return sdfg
