"""Container use analysis: who reads and writes each data container.

Transformation passes (map fusion, common-subexpression elimination, dead
code elimination) all need the same question answered: *for a given container,
where are its writers and readers, and in what program order?*  This module
walks the control-flow tree once and records, per container, every read and
write site together with its position (region, element index, node index), so
passes can check single-writer / single-consumer conditions and "no
intervening write" windows without re-walking the SDFG.

Reads that do not go through a memlet — container names referenced by branch
conditions (the frontend's ``__cond`` scalars) — are recorded as *opaque*
reads: they have no node to rewrite, so passes must leave such containers
alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.ir.control_flow import (
    ConditionalRegion,
    ControlFlowRegion,
    LoopRegion,
)
from repro.ir.memlet import Memlet
from repro.ir.nodes import ComputeNode
from repro.ir.state import State

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.sdfg import SDFG


@dataclass(frozen=True)
class UseSite:
    """One read or write of a container by a compute node.

    ``region``/``element_index``/``node_index`` locate the node in program
    order: ``region.elements[element_index]`` is the state holding the node
    and ``state.nodes[node_index]`` is the node itself.  For reads, ``conn``
    is the input connector the memlet enters through (``None`` for writes).
    """

    region: ControlFlowRegion
    element_index: int
    state: State
    node_index: int
    node: ComputeNode
    conn: Optional[str] = None
    memlet: Optional[Memlet] = None

    def position(self) -> tuple[int, int]:
        """(element index, node index) — orders sites within one region."""
        return (self.element_index, self.node_index)


@dataclass
class UseSites:
    """All uses of one container.

    Attributes
    ----------
    writes:
        Sites whose node's output memlet targets the container (accumulating
        writes included — they are reads *and* writes).
    reads:
        Sites whose node reads the container through an input memlet, plus an
        entry per accumulating write (the previous contents are read).
    opaque_reads:
        Number of references with no rewritable memlet (branch conditions).
        A non-zero count means the container cannot be renamed or removed.
    """

    writes: list[UseSite] = field(default_factory=list)
    reads: list[UseSite] = field(default_factory=list)
    opaque_reads: int = 0

    def read_nodes(self) -> set[int]:
        return {id(site.node) for site in self.reads}

    def sole_reader(self) -> Optional[ComputeNode]:
        """The one node performing every read of this container, or ``None``
        when there are no reads or several distinct readers.  Single-consumer
        checks (map fusion) start here."""
        nodes = self.read_nodes()
        if len(nodes) != 1:
            return None
        return self.reads[0].node

    def traffic_sites(self) -> Iterator[UseSite]:
        """Every use site that moves this container's data through a memlet,
        writes then reads (accumulating writes appear once per role).  The
        site's node provides the iteration-domain context a per-element map
        memlet needs; summed by
        :meth:`repro.passes.cost.CostModel.container_traffic_bytes` into the
        per-container traffic figure passes can query."""
        for site in self.writes:
            if site.memlet is not None:
                yield site
        for site in self.reads:
            if site.memlet is not None:
                yield site


def _walk_states(
    region: ControlFlowRegion,
) -> Iterator[tuple[ControlFlowRegion, int, State]]:
    for index, element in enumerate(region.elements):
        if isinstance(element, State):
            yield region, index, element
        elif isinstance(element, LoopRegion):
            yield from _walk_states(element.body)
        elif isinstance(element, ConditionalRegion):
            for _, branch in element.branches:
                yield from _walk_states(branch)


def collect_uses(sdfg: "SDFG") -> dict[str, UseSites]:
    """Map every container name to its :class:`UseSites`.

    Containers that are never referenced still get an (empty) entry, so
    callers can use ``uses[name]`` unconditionally.
    """
    uses: dict[str, UseSites] = {name: UseSites() for name in sdfg.arrays}

    def sites_for(name: str) -> UseSites:
        # Defensive: tolerate memlets naming containers not in ``arrays``.
        return uses.setdefault(name, UseSites())

    for region, element_index, state in _walk_states(sdfg.root):
        for node_index, node in enumerate(state.nodes):
            for conn, memlet in node.inputs.items():
                sites_for(memlet.data).reads.append(
                    UseSite(region, element_index, state, node_index, node,
                            conn=conn, memlet=memlet)
                )
            out_site = UseSite(region, element_index, state, node_index, node,
                               memlet=node.output)
            sites_for(node.output.data).writes.append(out_site)
            if node.output.accumulate:
                # ``+=`` also reads the previous contents (no connector).
                sites_for(node.output.data).reads.append(out_site)

    array_names = set(sdfg.arrays)
    for conditional in sdfg.all_conditionals():
        for condition, _ in conditional.branches:
            if condition is None:
                continue
            for name in condition.free_symbols() & array_names:
                sites_for(name).opaque_reads += 1
    for loop in sdfg.all_loops():
        for bound in (loop.start, loop.stop, loop.step):
            for name in bound.free_symbols() & array_names:
                sites_for(name).opaque_reads += 1
    return uses
