"""Structural validation of SDFGs.

Validation catches frontend and transformation bugs early: every memlet must
reference a registered container, subset dimensionality must match the
container, map parameters must be unique, loop iterators must not be written
inside their own body (the paper's loop contract), and conditionals must have
at most one ``else`` branch.
"""

from __future__ import annotations

from repro.ir.control_flow import ConditionalRegion, ControlFlowRegion, LoopRegion
from repro.ir.memlet import Memlet
from repro.ir.nodes import ComputeNode, LibraryCall, MapCompute
from repro.ir.state import State
from repro.util.errors import ValidationError


def validate_sdfg(sdfg) -> None:
    """Raise :class:`ValidationError` on the first structural problem found."""
    for name in sdfg.arg_names:
        if name not in sdfg.arrays and name not in sdfg.symbols:
            raise ValidationError(f"Argument {name!r} is neither an array nor a symbol")
    _validate_region(sdfg, sdfg.root, loop_iterators=set())


def _validate_region(sdfg, region: ControlFlowRegion, loop_iterators: set[str]) -> None:
    for element in region.elements:
        if isinstance(element, State):
            _validate_state(sdfg, element, loop_iterators)
        elif isinstance(element, LoopRegion):
            _validate_loop(sdfg, element, loop_iterators)
        elif isinstance(element, ConditionalRegion):
            _validate_conditional(sdfg, element, loop_iterators)
        else:
            raise ValidationError(f"Unknown control flow element {element!r}")


def _validate_loop(sdfg, loop: LoopRegion, loop_iterators: set[str]) -> None:
    if loop.itervar in loop_iterators:
        raise ValidationError(f"Loop iterator {loop.itervar!r} shadows an outer loop iterator")
    if loop.itervar in sdfg.arrays:
        raise ValidationError(f"Loop iterator {loop.itervar!r} collides with a data container")
    # The loop body must not write the iterator (static iteration space).
    if loop.itervar in loop.body.written_data():
        raise ValidationError(
            f"Loop body writes its own iterator {loop.itervar!r}; "
            "unstructured iteration spaces are outside the supported class"
        )
    _validate_region(sdfg, loop.body, loop_iterators | {loop.itervar})


def _validate_conditional(sdfg, cond: ConditionalRegion, loop_iterators: set[str]) -> None:
    if not cond.branches:
        raise ValidationError("Conditional region with no branches")
    else_count = sum(1 for condition, _ in cond.branches if condition is None)
    if else_count > 1:
        raise ValidationError("Conditional region with more than one else branch")
    for index, (condition, _) in enumerate(cond.branches):
        if condition is None and index != len(cond.branches) - 1:
            raise ValidationError("else branch must be the last branch")
    for _, region in cond.branches:
        _validate_region(sdfg, region, loop_iterators)


def _validate_state(sdfg, state: State, loop_iterators: set[str]) -> None:
    for node in state:
        if not isinstance(node, ComputeNode):
            raise ValidationError(f"State {state.label!r} holds a non-compute node {node!r}")
        for connector, memlet in node.inputs.items():
            _validate_memlet(sdfg, memlet, node, connector)
        _validate_memlet(sdfg, node.output, node, "__out")
        if isinstance(node, MapCompute):
            _validate_map(sdfg, node)
        elif isinstance(node, LibraryCall):
            pass  # kind already checked at construction


def _validate_memlet(sdfg, memlet: Memlet, node: ComputeNode, connector: str) -> None:
    if memlet.data not in sdfg.arrays:
        raise ValidationError(
            f"Memlet on connector {connector!r} of {node!r} references "
            f"unknown container {memlet.data!r}"
        )
    if memlet.subset is not None:
        desc = sdfg.arrays[memlet.data]
        if len(memlet.subset) != desc.ndim:
            raise ValidationError(
                f"Memlet subset for {memlet.data!r} has {len(memlet.subset)} dimensions, "
                f"container has {desc.ndim}"
            )


def _validate_map(sdfg, node: MapCompute) -> None:
    if len(set(node.params)) != len(node.params):
        raise ValidationError(f"Map {node.label!r} has duplicate parameters {node.params}")
    for param in node.params:
        if param in sdfg.arrays:
            raise ValidationError(
                f"Map parameter {param!r} of {node.label!r} collides with a data container"
            )
    if not node.inputs and node.expr.free_symbols() - set(node.params) - set(sdfg.symbols):
        # Expressions may only reference connectors, map params and symbols.
        unknown = node.expr.free_symbols() - set(node.params) - set(sdfg.symbols)
        raise ValidationError(
            f"Tasklet of {node.label!r} references unknown symbols {sorted(unknown)}"
        )
