"""Control-flow constructs: regions, sequential loops and conditionals.

These mirror the paper's Loop Region (Fig. 2) and the multi-state conditional
control flow of Fig. 3.  A :class:`ControlFlowRegion` is an ordered sequence
of elements executed one after another; loops and conditionals nest regions.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.ir.state import State
from repro.symbolic import Const, Expr, as_expr
from repro.util import OrderedSet

ControlFlowElement = Union[State, "LoopRegion", "ConditionalRegion"]


class ControlFlowRegion:
    """An ordered sequence of states / loops / conditionals."""

    def __init__(self, label: str = "region") -> None:
        self.label = label
        self.elements: list[ControlFlowElement] = []

    # -- construction ------------------------------------------------------
    def add(self, element: ControlFlowElement) -> ControlFlowElement:
        self.elements.append(element)
        return element

    def add_state(self, label: str = "state") -> State:
        state = State(label)
        self.elements.append(state)
        return state

    # -- traversal ---------------------------------------------------------
    def __iter__(self) -> Iterator[ControlFlowElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def all_states(self) -> Iterator[State]:
        """All states in this region, depth first, in program order."""
        for element in self.elements:
            if isinstance(element, State):
                yield element
            elif isinstance(element, LoopRegion):
                yield from element.body.all_states()
            elif isinstance(element, ConditionalRegion):
                for _, branch in element.branches:
                    yield from branch.all_states()

    def all_elements(self) -> Iterator[ControlFlowElement]:
        """All elements (states, loops, conditionals) in this region, depth first."""
        for element in self.elements:
            yield element
            if isinstance(element, LoopRegion):
                yield from element.body.all_elements()
            elif isinstance(element, ConditionalRegion):
                for _, branch in element.branches:
                    yield from branch.all_elements()

    # -- dataflow summaries --------------------------------------------------
    def read_data(self) -> OrderedSet[str]:
        result: OrderedSet[str] = OrderedSet()
        for element in self.elements:
            result.update(element_read_data(element))
        return result

    def written_data(self) -> OrderedSet[str]:
        result: OrderedSet[str] = OrderedSet()
        for element in self.elements:
            result.update(element_written_data(element))
        return result

    def __repr__(self) -> str:
        return f"ControlFlowRegion({self.label!r}, {len(self.elements)} elements)"


class LoopRegion:
    """A sequential counted loop ``for itervar in range(start, stop, step)``.

    The loop header expressions may reference SDFG symbols and outer loop
    iterators (affine or loop-invariant non-affine, per the paper's taxonomy);
    the body must not modify them.  ``step`` may be negative.
    """

    def __init__(
        self,
        itervar: str,
        start,
        stop,
        step=1,
        label: str = "loop",
    ) -> None:
        self.label = label
        self.itervar = itervar
        self.start: Expr = as_expr(start)
        self.stop: Expr = as_expr(stop)
        self.step: Expr = as_expr(step)
        self.body = ControlFlowRegion(label=f"{label}_body")

    def trip_count_expr(self) -> Expr:
        """Number of iterations (assumes the range is non-empty or clamps to 0
        at runtime; used for tape sizing and cost models)."""
        from repro.symbolic.simplify import simplify

        span = self.stop - self.start
        return simplify((span + self.step - Const(1)) // self.step)

    def read_data(self) -> OrderedSet[str]:
        return self.body.read_data()

    def written_data(self) -> OrderedSet[str]:
        return self.body.written_data()

    def __repr__(self) -> str:
        return (
            f"LoopRegion({self.itervar}=range({self.start!r}, {self.stop!r}, {self.step!r}), "
            f"{len(self.body.elements)} elements)"
        )


class ConditionalRegion:
    """Multi-way branch.  ``branches`` is a list of (condition, region) pairs;
    a ``None`` condition is the final ``else`` branch."""

    def __init__(self, label: str = "if") -> None:
        self.label = label
        self.branches: list[tuple[Optional[Expr], ControlFlowRegion]] = []

    def add_branch(self, condition: Optional[Expr], label: str = "") -> ControlFlowRegion:
        region = ControlFlowRegion(label=label or f"{self.label}_branch{len(self.branches)}")
        condition_expr = as_expr(condition) if condition is not None else None
        self.branches.append((condition_expr, region))
        return region

    def has_else(self) -> bool:
        return any(cond is None for cond, _ in self.branches)

    def read_data(self) -> OrderedSet[str]:
        result: OrderedSet[str] = OrderedSet()
        for _, region in self.branches:
            result.update(region.read_data())
        return result

    def written_data(self) -> OrderedSet[str]:
        result: OrderedSet[str] = OrderedSet()
        for _, region in self.branches:
            result.update(region.written_data())
        return result

    def __repr__(self) -> str:
        return f"ConditionalRegion({self.label!r}, {len(self.branches)} branches)"


def element_read_data(element: ControlFlowElement) -> OrderedSet[str]:
    """Containers read by any control-flow element."""
    return element.read_data()


def element_written_data(element: ControlFlowElement) -> OrderedSet[str]:
    """Containers written by any control-flow element."""
    return element.written_data()
