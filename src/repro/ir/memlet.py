"""Memlets: data-movement annotations on dataflow edges.

A memlet names the container being moved, the subset of it that is accessed
and - for writes - whether the write accumulates into the destination
(write-conflict resolution by addition).  Accumulating writes are how both the
frontend expresses ``+=`` statements and how the AD engine expresses gradient
accumulation ("any array read in the forward graph results in a write in the
backward graph ... we always accumulate gradients", paper Section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.ir.subsets import Subset


@dataclass
class Memlet:
    """Data movement descriptor.

    Attributes
    ----------
    data:
        Name of the container being accessed.
    subset:
        Which elements are accessed; ``None`` means the whole container.
    accumulate:
        For write memlets: True if the write adds into the existing contents
        (``+=``), False for a plain overwrite.
    """

    data: str
    subset: Optional[Subset] = None
    accumulate: bool = False

    def free_symbols(self) -> set[str]:
        if self.subset is None:
            return set()
        return self.subset.free_symbols()

    def substituted(self, mapping: Mapping[str, object]) -> "Memlet":
        subset = self.subset.substituted(mapping) if self.subset is not None else None
        return Memlet(self.data, subset, self.accumulate)

    def is_full_write(self, shape) -> bool:
        """True if this memlet covers the whole container of the given shape
        (i.e. a write through it replaces every element)."""
        if self.subset is None:
            return True
        return self.subset.is_full(shape)

    def with_leading(self, dim, full_shape=None) -> "Memlet":
        """New memlet with ``dim`` prepended to the subset (rank extension).

        ``dim`` is an :class:`~repro.ir.subsets.Index` or
        :class:`~repro.ir.subsets.Range`.  A ``None`` subset addresses the
        whole container; prepending to it requires the container's *original*
        shape (``full_shape``) so the remaining dimensions can be spelled out
        as explicit full ranges.  Used by the batching transform
        (:mod:`repro.batching`) when the underlying container gains a leading
        batch dimension.
        """
        if self.subset is not None:
            return Memlet(self.data, self.subset.with_leading(dim), self.accumulate)
        if full_shape is None:
            raise ValueError(
                f"Cannot rank-extend the whole-container memlet of {self.data!r} "
                "without its original shape"
            )
        return Memlet(
            self.data, Subset.full(full_shape).with_leading(dim), self.accumulate
        )

    def copy(self) -> "Memlet":
        return Memlet(self.data, self.subset, self.accumulate)

    def __repr__(self) -> str:
        acc = ", accumulate" if self.accumulate else ""
        return f"Memlet({self.data!r}, {self.subset!r}{acc})"
