"""Array and scalar data descriptors.

Every named data container in an SDFG (program inputs, transients, gradients,
tapes) is described by an :class:`ArrayDesc`.  Shapes may mix integers and
symbolic expressions in the SDFG's size parameters (``N``, ``TSTEPS``...);
scalars are 0-dimensional arrays, which keeps gradient accumulation uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.ir.dtypes import as_dtype, itemsize_bytes
from repro.symbolic import Const, Expr, as_expr, evaluate

ShapeEntry = "Expr | int"


@dataclass
class ArrayDesc:
    """Descriptor of one data container.

    Attributes
    ----------
    name:
        Container name, unique within the SDFG.
    shape:
        Tuple of dimension sizes (ints or symbolic expressions). ``()`` means
        scalar.
    dtype:
        NumPy dtype of the elements.
    transient:
        True for containers allocated inside the SDFG (temporaries, tapes,
        gradients); False for containers passed in by the caller.
    zero_init:
        If True the code generator zero-initialises the container on
        allocation.  Gradient containers always use this (the paper
        initialises all gradients to zero and accumulates).
    """

    name: str
    shape: tuple = ()
    dtype: np.dtype = np.dtype(np.float64)
    transient: bool = False
    zero_init: bool = False

    def __post_init__(self) -> None:
        self.dtype = as_dtype(self.dtype)
        normalized = []
        for dim in self.shape:
            if isinstance(dim, Expr):
                normalized.append(dim)
            else:
                normalized.append(int(dim))
        self.shape = tuple(normalized)

    # -- queries ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return len(self.shape) == 0

    def shape_exprs(self) -> tuple[Expr, ...]:
        """Shape with every entry coerced to a symbolic expression."""
        return tuple(as_expr(dim) for dim in self.shape)

    def free_symbols(self) -> set[str]:
        symbols: set[str] = set()
        for dim in self.shape:
            if isinstance(dim, Expr):
                symbols |= dim.free_symbols()
        return symbols

    def concrete_shape(self, symbol_values: Mapping[str, int]) -> tuple[int, ...]:
        """Evaluate the shape for concrete symbol values."""
        result = []
        for dim in self.shape:
            if isinstance(dim, Expr):
                result.append(int(evaluate(dim, symbol_values)))
            else:
                result.append(int(dim))
        return tuple(result)

    def total_elements(self, symbol_values: Mapping[str, int]) -> int:
        total = 1
        for dim in self.concrete_shape(symbol_values):
            total *= dim
        return total

    def size_bytes(self, symbol_values: Mapping[str, int]) -> int:
        """Memory footprint in bytes for concrete symbol values (used by the
        ILP memory-measurement sequence)."""
        return self.total_elements(symbol_values) * itemsize_bytes(self.dtype)

    def symbolic_total_elements(self) -> Expr:
        total: Expr = Const(1)
        for dim in self.shape_exprs():
            total = total * dim
        return total

    # -- transformations -------------------------------------------------
    def with_leading_dim(self, dim: "ShapeEntry") -> "ArrayDesc":
        """Copy of this descriptor with ``dim`` prepended to the shape.

        The rank-extension primitive of the batching transform
        (:mod:`repro.batching`): a batched container keeps its name, dtype
        and transient-ness but gains a leading (symbolic) batch dimension.
        """
        return self.copy(shape=(dim,) + tuple(self.shape))

    # -- helpers ---------------------------------------------------------
    def copy(self, **overrides) -> "ArrayDesc":
        data = {
            "name": self.name,
            "shape": self.shape,
            "dtype": self.dtype,
            "transient": self.transient,
            "zero_init": self.zero_init,
        }
        data.update(overrides)
        return ArrayDesc(**data)

    def __repr__(self) -> str:
        kind = "transient" if self.transient else "argument"
        return f"ArrayDesc({self.name!r}, shape={self.shape}, dtype={self.dtype.name}, {kind})"
