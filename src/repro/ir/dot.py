"""Graphviz DOT export of SDFGs.

Only for inspection/debugging; mirrors the visual language of the paper's
figures: ovals for access nodes, boxes for tasklets/compute nodes, trapezoid
labels for maps, double octagons for library nodes, clusters for states and
control-flow regions.
"""

from __future__ import annotations

from repro.ir.control_flow import ConditionalRegion, ControlFlowRegion, LoopRegion
from repro.ir.nodes import AccessNode, LibraryCall, MapCompute
from repro.ir.state import State
from repro.symbolic import to_python


def sdfg_to_dot(sdfg) -> str:
    """Render the SDFG as a Graphviz digraph source string."""
    lines = [f'digraph "{sdfg.name}" {{', "  compound=true;", "  node [fontsize=10];"]
    counter = [0]
    _emit_region(sdfg.root, lines, counter, indent="  ")
    lines.append("}")
    return "\n".join(lines)


def _next_id(counter) -> str:
    counter[0] += 1
    return f"n{counter[0]}"


def _emit_region(region: ControlFlowRegion, lines, counter, indent: str) -> None:
    for element in region.elements:
        if isinstance(element, State):
            _emit_state(element, lines, counter, indent)
        elif isinstance(element, LoopRegion):
            cluster = _next_id(counter)
            header = (
                f"{element.itervar} = {to_python(element.start)} .. {to_python(element.stop)} "
                f"step {to_python(element.step)}"
            )
            lines.append(f'{indent}subgraph cluster_{cluster} {{')
            lines.append(f'{indent}  label="loop: {header}"; color=blue;')
            _emit_region(element.body, lines, counter, indent + "  ")
            lines.append(f"{indent}}}")
        elif isinstance(element, ConditionalRegion):
            cluster = _next_id(counter)
            lines.append(f'{indent}subgraph cluster_{cluster} {{')
            lines.append(f'{indent}  label="conditional"; color=darkgreen;')
            for cond, branch in element.branches:
                branch_cluster = _next_id(counter)
                label = to_python(cond) if cond is not None else "else"
                lines.append(f'{indent}  subgraph cluster_{branch_cluster} {{')
                lines.append(f'{indent}    label="{_escape(label)}"; style=dashed;')
                _emit_region(branch, lines, counter, indent + "    ")
                lines.append(f"{indent}  }}")
            lines.append(f"{indent}}}")


def _emit_state(state: State, lines, counter, indent: str) -> None:
    cluster = _next_id(counter)
    lines.append(f"{indent}subgraph cluster_{cluster} {{")
    lines.append(f'{indent}  label="{_escape(state.label)}"; color=gray;')
    graph = state.dataflow_graph()
    ids: dict[object, str] = {}
    for node in graph.nodes:
        node_id = _next_id(counter)
        ids[node] = node_id
        if isinstance(node, AccessNode):
            lines.append(f'{indent}  {node_id} [shape=ellipse, label="{_escape(node.data)}"];')
        elif isinstance(node, MapCompute):
            domain = ", ".join(
                f"{p}=[{to_python(r.start)}:{to_python(r.stop)}]"
                for p, r in zip(node.params, node.ranges)
            )
            label = f"map [{domain}]\\n{to_python(node.expr)}" if node.params else to_python(node.expr)
            lines.append(f'{indent}  {node_id} [shape=box, label="{_escape(label)}"];')
        elif isinstance(node, LibraryCall):
            lines.append(
                f'{indent}  {node_id} [shape=doubleoctagon, label="{_escape(node.kind)}"];'
            )
        else:
            lines.append(f'{indent}  {node_id} [shape=box, label="{_escape(node.label)}"];')
    for src, dst, data in graph.edges(data=True):
        memlet = data.get("memlet")
        label = memlet.data if memlet is not None else ""
        lines.append(f'{indent}  {ids[src]} -> {ids[dst]} [label="{_escape(label)}"];')
    lines.append(f"{indent}}}")


def _escape(text: str) -> str:
    return text.replace('"', '\\"').replace("\n", "\\n")
