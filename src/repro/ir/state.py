"""SDFG states.

A state holds a dataflow graph: access nodes connected to compute nodes by
memlet-labelled edges.  The frontend appends compute nodes in program order,
which is by construction a valid topological order of the dataflow graph, so
the state stores an *ordered list* of compute nodes and materialises the
explicit bipartite graph (access nodes <-> compute nodes) on demand for
analyses such as the CCS reverse-BFS and for DOT rendering.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.ir.nodes import AccessNode, ComputeNode
from repro.util import OrderedSet


class State:
    """A single SDFG state (one step of execution, akin to a basic block)."""

    def __init__(self, label: str = "state") -> None:
        self.label = label
        self.nodes: list[ComputeNode] = []

    # -- construction ------------------------------------------------------
    def add(self, node: ComputeNode) -> ComputeNode:
        """Append a compute node; program order == execution order."""
        self.nodes.append(node)
        return node

    def extend(self, nodes: Iterable[ComputeNode]) -> None:
        for node in nodes:
            self.add(node)

    # -- queries -----------------------------------------------------------
    def __iter__(self) -> Iterator[ComputeNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def is_empty(self) -> bool:
        return not self.nodes

    def read_data(self) -> OrderedSet[str]:
        """All containers read by this state (including read-modify-write)."""
        result: OrderedSet[str] = OrderedSet()
        for node in self.nodes:
            result.update(sorted(node.read_data()))
            if node.output.accumulate:
                # An accumulating write also reads the previous contents.
                result.add(node.output.data)
        return result

    def written_data(self) -> OrderedSet[str]:
        """All containers written by this state."""
        return OrderedSet(node.output.data for node in self.nodes)

    def full_overwrites(self, arrays) -> OrderedSet[str]:
        """Containers whose entire contents are replaced by this state.

        ``arrays`` maps container names to :class:`~repro.ir.arrays.ArrayDesc`
        so the memlet subset can be compared against the container shape.
        """
        result: OrderedSet[str] = OrderedSet()
        for node in self.nodes:
            memlet = node.output
            if memlet.accumulate:
                continue
            desc = arrays[memlet.data]
            if memlet.is_full_write(desc.shape):
                result.add(memlet.data)
        return result

    # -- graph view ----------------------------------------------------------
    def dataflow_graph(self) -> nx.MultiDiGraph:
        """Materialise the access-node / compute-node bipartite graph.

        For each compute node we add one access node per distinct input
        container (reusing the most recent *written* access node of that
        container so def-use chains inside the state are explicit), plus one
        access node for its output.  Edges carry the memlet in their data
        dict under the key ``"memlet"``.
        """
        graph: nx.MultiDiGraph = nx.MultiDiGraph()
        last_write: dict[str, AccessNode] = {}
        for node in self.nodes:
            graph.add_node(node)
            for connector, memlet in node.inputs.items():
                access = last_write.get(memlet.data)
                if access is None:
                    access = AccessNode(memlet.data)
                    graph.add_node(access)
                    # Remember pure-read access nodes too, so repeated reads
                    # share one node (matching typical SDFG rendering).
                    last_write.setdefault(memlet.data, access)
                graph.add_edge(access, node, memlet=memlet, connector=connector)
            out_access = AccessNode(node.output.data)
            graph.add_node(out_access)
            graph.add_edge(node, out_access, memlet=node.output, connector="__out")
            last_write[node.output.data] = out_access
        return graph

    def __repr__(self) -> str:
        return f"State({self.label!r}, {len(self.nodes)} nodes)"
