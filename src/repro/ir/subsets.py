"""Subsets: the index sets referenced by memlets.

A :class:`Subset` describes which elements of a data container a memlet moves.
Each dimension is either a single :class:`Index` (an expression in loop/map
iterators and size symbols) or a :class:`Range` with Python-slice semantics
(inclusive start, exclusive stop, step).

Subsets are the piece of the IR that lets DaCe AD convert array slices into
"direct memory accesses" instead of dynamic slicing (paper, Section V-B): the
code generator turns affine subsets into NumPy basic slices, and the AD engine
transposes them to route gradients back to the right elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.symbolic import Const, Expr, as_expr, evaluate, substitute
from repro.symbolic.simplify import simplify


@dataclass(frozen=True)
class Index:
    """A single-element access in one dimension, e.g. ``A[i + 1, ...]``."""

    value: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", as_expr(self.value))

    def free_symbols(self) -> set[str]:
        return self.value.free_symbols()

    def substituted(self, mapping: Mapping[str, object]) -> "Index":
        return Index(simplify(substitute(self.value, mapping)))

    def __repr__(self) -> str:
        return f"Index({self.value!r})"


@dataclass(frozen=True)
class Range:
    """A strided range ``start:stop:step`` (stop exclusive) in one dimension."""

    start: Expr
    stop: Expr
    step: Expr = Const(1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", as_expr(self.start))
        object.__setattr__(self, "stop", as_expr(self.stop))
        object.__setattr__(self, "step", as_expr(self.step))

    def free_symbols(self) -> set[str]:
        return self.start.free_symbols() | self.stop.free_symbols() | self.step.free_symbols()

    def substituted(self, mapping: Mapping[str, object]) -> "Range":
        return Range(
            simplify(substitute(self.start, mapping)),
            simplify(substitute(self.stop, mapping)),
            simplify(substitute(self.step, mapping)),
        )

    def length_expr(self) -> Expr:
        """Number of elements, matching ``len(range(start, stop, step))`` for
        well-formed (non-empty-direction) ranges.

        The common unit-step cases stay division-free — ``stop - start`` for
        step 1 and ``start - stop`` for step -1 — which keeps length
        expressions in a form structural comparisons (full-write checks,
        fusion's identity test) and emitted slices can work with.  Constant
        negative steps use the downward-counting formula
        ``(start - stop + |step| - 1) // |step|`` (the upward formula would
        overcount by one for every non-exact division).  A *symbolic* step is
        assumed positive — the frontend only produces symbolic steps from
        forward slices — and uses the upward ceiling division.
        """
        step = simplify(self.step)
        if step == Const(1):
            return simplify(self.stop - self.start)
        if step == Const(-1):
            return simplify(self.start - self.stop)
        if isinstance(step, Const) and not isinstance(step.value, bool) and step.value < 0:
            magnitude = Const(-step.value)
            diff = self.start - self.stop
            return simplify((diff + magnitude - Const(1)) // magnitude)
        diff = self.stop - self.start
        return simplify((diff + step - Const(1)) // step)

    def concrete_length(self, symbol_values: Mapping[str, int]) -> int:
        start = int(evaluate(self.start, symbol_values))
        stop = int(evaluate(self.stop, symbol_values))
        step = int(evaluate(self.step, symbol_values))
        return len(range(start, stop, step))

    def __repr__(self) -> str:
        return f"Range({self.start!r}, {self.stop!r}, {self.step!r})"


Dimension = Union[Index, Range]


class Subset:
    """An N-dimensional subset: one :class:`Index` or :class:`Range` per dim.

    A subset with zero dimensions addresses a scalar container.
    """

    __slots__ = ("dims",)

    def __init__(self, dims: Iterable[Dimension] = ()) -> None:
        self.dims: tuple[Dimension, ...] = tuple(dims)
        for dim in self.dims:
            if not isinstance(dim, (Index, Range)):
                raise TypeError(f"Subset dimensions must be Index or Range, got {dim!r}")

    # -- constructors ----------------------------------------------------
    @classmethod
    def full(cls, shape: Iterable) -> "Subset":
        """The subset covering a whole array of the given (symbolic) shape."""
        return cls(Range(Const(0), as_expr(dim), Const(1)) for dim in shape)

    @classmethod
    def point(cls, indices: Iterable) -> "Subset":
        """A single-element subset, e.g. ``A[i, j-1]``."""
        return cls(Index(as_expr(index)) for index in indices)

    # -- queries ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    def is_point(self) -> bool:
        """True if every dimension is a single index (one element moved)."""
        return all(isinstance(dim, Index) for dim in self.dims)

    def is_full(self, shape: Iterable) -> bool:
        """True if this subset trivially covers an array of the given shape."""
        shape = tuple(as_expr(dim) for dim in shape)
        if len(shape) != len(self.dims):
            return False
        for dim, size in zip(self.dims, shape):
            if not isinstance(dim, Range):
                return False
            if simplify(dim.start) != Const(0):
                return False
            if simplify(dim.step) != Const(1):
                return False
            if simplify(dim.stop) != simplify(size):
                return False
        return True

    def free_symbols(self) -> set[str]:
        symbols: set[str] = set()
        for dim in self.dims:
            symbols |= dim.free_symbols()
        return symbols

    def shape_exprs(self) -> tuple[Expr, ...]:
        """Shape of the moved data (Index dims contribute no axis)."""
        return tuple(dim.length_expr() for dim in self.dims if isinstance(dim, Range))

    def volume_expr(self) -> Expr:
        """Number of elements moved (symbolic)."""
        total: Expr = Const(1)
        for dim in self.dims:
            if isinstance(dim, Range):
                total = total * dim.length_expr()
        return simplify(total)

    def concrete_volume(self, symbol_values: Mapping[str, int]) -> int:
        total = 1
        for dim in self.dims:
            if isinstance(dim, Range):
                total *= dim.concrete_length(symbol_values)
        return total

    # -- transformations -------------------------------------------------
    def substituted(self, mapping: Mapping[str, object]) -> "Subset":
        return Subset(dim.substituted(mapping) for dim in self.dims)

    def with_leading(self, dim: Dimension) -> "Subset":
        """New subset with ``dim`` (an :class:`Index` or :class:`Range`)
        prepended — the rank-extension primitive used when a container gains
        a leading batch dimension (:mod:`repro.batching`)."""
        if not isinstance(dim, (Index, Range)):
            raise TypeError(f"Leading dimension must be Index or Range, got {dim!r}")
        return Subset((dim,) + self.dims)

    # -- misc ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subset):
            return NotImplemented
        return self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index: int) -> Dimension:
        return self.dims[index]

    def __repr__(self) -> str:
        return f"Subset({list(self.dims)!r})"
