"""SDFG-like data-centric intermediate representation.

This package reimplements the subset of DaCe's Stateful DataFlow multiGraph
(SDFG) needed by the paper:

* **data descriptors** (:mod:`repro.ir.arrays`): arrays/scalars with symbolic
  shapes, dtypes and transient flags;
* **subsets and memlets** (:mod:`repro.ir.subsets`, :mod:`repro.ir.memlet`):
  the data-movement annotations that make tracking dataflow (the key AD
  challenge highlighted by the paper) explicit;
* **dataflow nodes** (:mod:`repro.ir.nodes`): access nodes, fused
  Map+Tasklet compute nodes and library nodes (matmul, reductions, NN ops);
* **states and control flow** (:mod:`repro.ir.state`,
  :mod:`repro.ir.control_flow`): states holding dataflow graphs, sequential
  loop regions and conditional regions;
* the :class:`repro.ir.sdfg.SDFG` container plus validation, DOT export and
  JSON serialisation.
"""

from repro.ir.arrays import ArrayDesc
from repro.ir.dtypes import as_dtype, dtype_to_str, float32, float64, int32, int64, boolean
from repro.ir.subsets import Index, Range, Subset
from repro.ir.memlet import Memlet
from repro.ir.nodes import AccessNode, ComputeNode, LibraryCall, MapCompute, Node
from repro.ir.state import State
from repro.ir.control_flow import (
    ConditionalRegion,
    ControlFlowRegion,
    ControlFlowElement,
    LoopRegion,
)
from repro.ir.sdfg import SDFG
from repro.ir.usage import UseSite, UseSites, collect_uses
from repro.ir.validation import validate_sdfg

__all__ = [
    "ArrayDesc",
    "as_dtype",
    "dtype_to_str",
    "float32",
    "float64",
    "int32",
    "int64",
    "boolean",
    "Index",
    "Range",
    "Subset",
    "Memlet",
    "AccessNode",
    "ComputeNode",
    "LibraryCall",
    "MapCompute",
    "Node",
    "State",
    "ControlFlowRegion",
    "ControlFlowElement",
    "LoopRegion",
    "ConditionalRegion",
    "SDFG",
    "UseSite",
    "UseSites",
    "collect_uses",
    "validate_sdfg",
]
