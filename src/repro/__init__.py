"""repro: a from-scratch reproduction of DaCe AD (CLUSTER 2025).

Public API re-exported here:

* frontend: :func:`program`, :func:`symbol`, dtype annotations
* IR: :class:`SDFG`
* compilation: :func:`compile` (the pipeline driver) and the low-level
  :func:`compile_sdfg`
* AD: :func:`grad`, :func:`value_and_grad`
* batching: :func:`vmap` (SDFG-level leading-axis vectorisation)
* serving: the fault-tolerant micro-batching runtime — :class:`BatchQueue`
  and :class:`CircuitBreaker` (see :mod:`repro.serve` and
  ``docs/serving.md``)
"""

from repro.frontend import (
    Program,
    boolean,
    float32,
    float64,
    int32,
    int64,
    parse_function,
    program,
    symbol,
)
from repro.ir import SDFG
from repro.codegen import compile_sdfg
from repro.autodiff import (
    GradientFunction,
    add_backward_pass,
    grad,
    value_and_grad,
)
from repro.pipeline import (
    CompilationCache,
    PassManager,
    PipelineReport,
    compile,
)
from repro.batching import BatchedProgram, vmap
from repro.serve import BatchQueue, CircuitBreaker

__version__ = "1.2.0"

__all__ = [
    "Program",
    "program",
    "parse_function",
    "symbol",
    "float32",
    "float64",
    "int32",
    "int64",
    "boolean",
    "SDFG",
    # NB: repro.compile is a module attribute but deliberately NOT in __all__,
    # so `from repro import *` does not shadow the builtin compile().
    "compile_sdfg",
    "CompilationCache",
    "PassManager",
    "PipelineReport",
    "GradientFunction",
    "add_backward_pass",
    "grad",
    "value_and_grad",
    "vmap",
    "BatchedProgram",
    "BatchQueue",
    "CircuitBreaker",
    "__version__",
]
