"""repro: a from-scratch reproduction of DaCe AD (CLUSTER 2025).

Public API re-exported here:

* frontend: :func:`program`, :func:`symbol`, dtype annotations
* IR: :class:`SDFG`
* code generation: :func:`compile_sdfg`
"""

from repro.frontend import (
    Program,
    boolean,
    float32,
    float64,
    int32,
    int64,
    parse_function,
    program,
    symbol,
)
from repro.ir import SDFG
from repro.codegen import compile_sdfg
from repro.autodiff import (
    GradientFunction,
    add_backward_pass,
    grad,
    value_and_grad,
)

__version__ = "1.0.0"

__all__ = [
    "Program",
    "program",
    "parse_function",
    "symbol",
    "float32",
    "float64",
    "int32",
    "int64",
    "boolean",
    "SDFG",
    "compile_sdfg",
    "GradientFunction",
    "add_backward_pass",
    "grad",
    "value_and_grad",
    "__version__",
]
