"""Seeded fault plans: *what* fails, *when*, and *how persistently*.

A :class:`FaultPlan` is a deterministic schedule of injected failures for
the serving runtime's kernel wrapper (:func:`repro.faults.inject.inject`).
Given the same seed and the same sequence of calls it makes exactly the
same decisions, so chaos tests and the CI chaos campaign
(:mod:`repro.faults.campaign`) are reproducible — the same philosophy as
the differential fuzzer's fixed-seed campaigns (``docs/fuzzing.md``).

Fault kinds, checked in this order on every wrapped call:

* **latency spikes** — with probability ``latency_rate``, sleep
  ``latency_ms`` before executing (tail-latency pressure, no error);
* **poison samples** — if the ``poison`` predicate matches any row of the
  stacked batch, raise a *persistent* :class:`InjectedFault`: the call
  fails every time that sample is present, which is exactly what batch
  bisection must isolate (:func:`poison_marker` builds the common
  marker-value predicate);
* **outage windows** — ``outage=(start, end)`` fails every call with index
  in ``[start, end)`` persistently (``end=None`` = forever): the schedule
  that trips the circuit breaker and then lets its recovery probe succeed;
* **scheduled transients** — call indices in ``fail_calls`` fail once;
* **random transients** — with probability ``transient_rate`` a call fails
  once; the retry re-rolls (and almost always succeeds), modelling flaky
  kernels/hardware.

``plan.injected`` counts what actually fired, for reports and asserts.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


class InjectedFault(RuntimeError):
    """A deliberately injected kernel failure.

    ``kind`` is ``"transient"`` (a retry may succeed), ``"persistent"``
    (an outage window) or ``"poison"`` (tied to a specific sample).
    """

    def __init__(self, message: str, kind: str = "transient") -> None:
        super().__init__(message)
        self.kind = kind

    @property
    def persistent(self) -> bool:
        return self.kind in ("persistent", "poison")


def poison_marker(name: str, value: float) -> Callable[[dict], bool]:
    """Predicate matching samples whose ``name`` argument starts with
    ``value`` — the standard way chaos tests mark one request as poison."""

    def predicate(row: dict) -> bool:
        arr = np.asarray(row.get(name))
        return arr.size > 0 and float(arr.flat[0]) == float(value)

    return predicate


def batch_rows(kwargs: dict):
    """Iterate the per-sample rows of stacked batch kwargs.

    The batch size is taken from the leading dimension of the first array
    argument (the batch queue passes stacked per-sample arguments first,
    broadcast ``static_kwargs`` after); arguments whose leading dimension
    differs (broadcast operands, scalars) are passed through unsliced.
    """
    batch = None
    for value in kwargs.values():
        arr = np.asarray(value)
        if arr.ndim >= 1:
            batch = arr.shape[0]
            break
    if batch is None:
        yield dict(kwargs)
        return
    for index in range(batch):
        row = {}
        for name, value in kwargs.items():
            arr = np.asarray(value)
            if arr.ndim >= 1 and arr.shape[0] == batch:
                row[name] = arr[index]
            else:
                row[name] = value
        yield row


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Thread-safe: the call counter and RNG draws are serialised, and every
    call consumes exactly two RNG rolls (latency, transient) regardless of
    which branches fire, so decision streams never shift when parameters
    change.
    """

    seed: int = 0
    transient_rate: float = 0.0
    latency_rate: float = 0.0
    latency_ms: float = 0.0
    fail_calls: Tuple[int, ...] = ()
    outage: Optional[Tuple[int, Optional[int]]] = None
    poison: Optional[Callable[[dict], bool]] = None
    #: Counts of faults that actually fired, by kind (plus "latency").
    injected: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._calls = 0
        self._lock = threading.Lock()
        self.injected = {"latency": 0, "poison": 0, "persistent": 0, "transient": 0}
        self._fail_calls = frozenset(self.fail_calls)

    @property
    def calls(self) -> int:
        """Number of wrapped calls decided so far."""
        return self._calls

    def reset(self) -> None:
        """Rewind to call 0 with a fresh RNG stream (same seed)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._calls = 0
            for key in self.injected:
                self.injected[key] = 0

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def on_call(self, kwargs: dict) -> None:
        """Decide this call's fate: may sleep, may raise :class:`InjectedFault`."""
        with self._lock:
            index = self._calls
            self._calls += 1
            latency_roll = self._rng.random()
            transient_roll = self._rng.random()
            spike = self.latency_rate > 0 and latency_roll < self.latency_rate
            if spike:
                self._count("latency")
        if spike and self.latency_ms > 0:
            import time

            time.sleep(self.latency_ms / 1e3)
        if self.poison is not None:
            for row in batch_rows(kwargs):
                if self.poison(row):
                    with self._lock:
                        self._count("poison")
                    raise InjectedFault(
                        f"injected poison sample (call {index})", kind="poison"
                    )
        if self.outage is not None:
            start, end = self.outage
            if index >= start and (end is None or index < end):
                with self._lock:
                    self._count("persistent")
                raise InjectedFault(
                    f"injected persistent outage (call {index})", kind="persistent"
                )
        if index in self._fail_calls:
            with self._lock:
                self._count("transient")
            raise InjectedFault(
                f"injected scheduled transient fault (call {index})"
            )
        if self.transient_rate > 0 and transient_roll < self.transient_rate:
            with self._lock:
                self._count("transient")
            raise InjectedFault(
                f"injected random transient fault (call {index})"
            )
