"""CLI entry point: ``python -m repro.faults`` runs the chaos campaign.

See :mod:`repro.faults.campaign` for the scenarios and the chaos
invariant; ``--seed``/``--requests`` control the schedule, ``--out``
writes the JSON report (uploaded as a CI artifact).
"""

import sys

from repro.faults.campaign import main

if __name__ == "__main__":
    sys.exit(main())
