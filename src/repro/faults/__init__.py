"""Deterministic fault injection for the serving runtime.

Chaos engineering needs failures on demand, reproducibly: a seeded
:class:`FaultPlan` (:mod:`repro.faults.plan`) schedules kernel exceptions
(random transients, scheduled calls, persistent outage windows, poison
samples), latency spikes and nothing else; the one-line kernel wrapper
:func:`inject` (:mod:`repro.faults.inject`) consults it before every
batched call.  The fixed-seed chaos campaign
(:mod:`repro.faults.campaign`, CLI ``python -m repro.faults``) drives the
full serving stack through seeded scenarios and enforces the chaos
invariant in CI — see ``docs/serving.md``.
"""

from repro.faults.inject import inject
from repro.faults.plan import FaultPlan, InjectedFault, batch_rows, poison_marker

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "inject",
    "poison_marker",
    "batch_rows",
]
