"""The fixed-seed chaos campaign: prove the serving runtime degrades, never dies.

``run_campaign`` drives the real serving stack — a compiled
``repro.vmap`` kernel behind a :class:`~repro.serve.runtime.BatchQueue` —
through four seeded fault scenarios and checks the chaos invariant on each
(the serving counterpart of the differential fuzzer's fixed-seed
campaigns, see ``docs/fuzzing.md``):

1. **bisection** — 1% transient faults plus latency spikes plus one
   persistent poison sample: every non-poison request must resolve with
   the correct result, the poison sample alone gets the injected failure,
   and the retry/bisection counters move;
2. **breaker** — a persistent primary outage window trips the circuit
   breaker to the NumPy-backend fallback, the recovery probe closes it
   once the outage ends, and breaker-state transition spans are recorded;
3. **lifecycle** — shed-oldest under overload, deadline expiry while
   queued, and caller-side cancellation, each resolving with its typed
   error while the worker keeps serving;
4. **supervision** — an injected supervisor-level crash fails only the
   in-flight batch, restarts the worker and later requests are served.

Across all scenarios: no future may hang, no worker thread may leak, and
the ``serve.{retries,shed,breaker_open}_total`` counters plus breaker
transition spans must appear in the obs snapshot.  The report (JSON) is
written by the CLI (``python -m repro.faults``) and uploaded as a CI
artifact.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.faults.inject import inject
from repro.faults.plan import FaultPlan, InjectedFault, poison_marker
from repro.obs import METRICS, TRACER, metrics_snapshot
from repro.serve import (
    BatchQueue,
    CircuitBreaker,
    DeadlineExceeded,
    RequestCancelled,
    numpy_fallback,
)

#: Per-sample problem size for the campaign kernel (small: the campaign
#: exercises the runtime, not the kernel).
SAMPLE_SIZE = {"N": 8, "M": 8}
AXES = {"x": 0, "r": 0, "bias": None}
POISON_VALUE = 1e30
RESULT_TIMEOUT = 60.0


def _counter(name: str) -> int:
    metric = METRICS.get(name)
    return int(metric.value) if metric is not None else 0


def _build_kernel():
    """The campaign workload: vmapped ``bias_act`` plus its per-sample oracle."""
    import repro
    from repro.npbench import get_kernel

    spec = get_kernel("bias_act")
    program = spec.program_for()
    batched_program = repro.vmap(program, in_axes=AXES)
    batched = batched_program.compile(optimize="O1")
    base = program.compile(optimize="O1")
    data = [
        spec.initialize(**SAMPLE_SIZE, seed=1000 + index) for index in range(4)
    ]
    bias = data[0]["bias"]
    return batched_program, batched, base, bias


def _sample(index: int) -> dict:
    rng = np.random.default_rng(index)
    return {
        "x": rng.random((SAMPLE_SIZE["N"], SAMPLE_SIZE["M"])) - 0.25,
        "r": rng.random((SAMPLE_SIZE["N"], SAMPLE_SIZE["M"])),
    }


def scenario_bisection(seed: int, requests: int, batched, base, bias) -> dict:
    """Transients + latency spikes + one poison sample through bisection."""
    plan = FaultPlan(
        seed=seed,
        transient_rate=0.01,
        latency_rate=0.02,
        latency_ms=2.0,
        fail_calls=(3, 11),
        poison=poison_marker("x", POISON_VALUE),
    )
    before = {name: _counter(name) for name in (
        "serve.retries_total", "serve.bisections_total", "serve.failed_requests_total",
    )}
    queue = BatchQueue(
        inject(batched, plan), max_batch=4, max_wait_ms=1.0,
        static_kwargs={"bias": bias}, max_retries=2, backoff_ms=0.5,
        backoff_cap_ms=4.0,
    )
    poison_at = requests // 2
    with queue:
        queue.hold()
        futures = []
        for index in range(requests):
            sample = _sample(index)
            if index == poison_at:
                sample["x"] = sample["x"].copy()
                sample["x"].flat[0] = POISON_VALUE
            futures.append(queue.submit(**sample))
        queue.release()
        outcomes = []
        for index, future in enumerate(futures):
            try:
                outcomes.append(("ok", future.result(timeout=RESULT_TIMEOUT)))
            except BaseException as exc:  # noqa: BLE001 - recorded below
                outcomes.append(("error", exc))
        # The worker must survive the whole storm.
        survivor = queue.submit(**_sample(requests + 1)).result(timeout=RESULT_TIMEOUT)
    wrong, non_poison_failed, poison_ok = [], [], True
    for index, (status, value) in enumerate(outcomes):
        if index == poison_at:
            poison_ok = status == "error" and isinstance(value, InjectedFault)
            continue
        if status != "ok":
            non_poison_failed.append((index, repr(value)))
        else:
            want = base(**_sample(index), bias=bias)
            if not np.allclose(value, want, rtol=1e-9):
                wrong.append(index)
    retries = _counter("serve.retries_total") - before["serve.retries_total"]
    bisections = _counter("serve.bisections_total") - before["serve.bisections_total"]
    return {
        "requests": requests,
        "injected": dict(plan.injected),
        "kernel_calls": plan.calls,
        "retries": retries,
        "bisections": bisections,
        "poison_failed_alone": poison_ok and not non_poison_failed,
        "non_poison_failures": non_poison_failed,
        "wrong_results": wrong,
        "worker_survived": bool(np.isfinite(survivor)),
        "stats": {
            "batches": queue.stats.batches,
            "mean_batch": queue.stats.mean_batch,
            "failed": queue.stats.failed,
        },
        "ok": (
            poison_ok and not non_poison_failed and not wrong
            and retries > 0 and bisections > 0
        ),
    }


def scenario_breaker(seed: int, batched_program, batched, base, bias) -> dict:
    """Persistent outage trips the breaker to the NumPy fallback; the
    recovery probe closes it once the outage window ends."""
    plan = FaultPlan(seed=seed + 1, outage=(0, 6))
    breaker = CircuitBreaker(
        inject(batched, plan),
        fallback=numpy_fallback(batched_program, optimize="O1"),
        failure_threshold=3,
        reset_timeout_ms=30.0,
        name="campaign",
    )
    spans_before = sum(
        1 for record in TRACER.spans() if record.name == "serve.breaker.transition"
    )
    opened_before = _counter("serve.breaker_open_total")
    fallback_before = _counter("serve.breaker_fallback_total")
    results = []
    with BatchQueue(
        breaker, max_batch=4, max_wait_ms=0.0, static_kwargs={"bias": bias},
        max_retries=1, backoff_ms=0.5, backoff_cap_ms=4.0,
    ) as queue:
        for index in range(10):
            sample = _sample(2000 + index)
            want = base(**sample, bias=bias)
            try:
                got = queue(**sample)
                results.append(("ok", bool(np.allclose(got, want, rtol=1e-9))))
            except BaseException as exc:  # noqa: BLE001 - pre-trip failures
                results.append(("error", isinstance(exc, InjectedFault)))
            time.sleep(0.04)  # let the breaker cooldown elapse between calls
    opened = _counter("serve.breaker_open_total") - opened_before
    fallback_calls = _counter("serve.breaker_fallback_total") - fallback_before
    transitions = sum(
        1 for record in TRACER.spans() if record.name == "serve.breaker.transition"
    ) - spans_before
    served_ok = sum(1 for status, good in results if status == "ok" and good)
    typed_failures = all(good for status, good in results if status == "error")
    return {
        "results": [status for status, _ in results],
        "served_correctly": served_ok,
        "breaker_open_total": opened,
        "breaker_fallback_total": fallback_calls,
        "transition_spans": transitions,
        "final_state": breaker.state,
        "ok": (
            opened >= 1 and fallback_calls >= 1 and served_ok >= 6
            and typed_failures and breaker.state == "closed"
            and transitions >= 2
        ),
    }


def scenario_lifecycle(batched, bias) -> dict:
    """Shed-oldest under overload, deadline expiry, caller cancellation."""
    shed_before = _counter("serve.shed_total")
    expired_before = _counter("serve.deadline_expired_total")
    with BatchQueue(
        batched, max_batch=4, max_wait_ms=1.0, static_kwargs={"bias": bias},
        max_pending=4, policy="shed_oldest",
    ) as queue:
        queue.hold()
        futures = [queue.submit(**_sample(3000 + index)) for index in range(10)]
        deadline_future = queue.submit(timeout_ms=5.0, **_sample(3100))
        cancel_future = queue.submit(**_sample(3101))
        cancelled = cancel_future.cancel()
        time.sleep(0.05)  # let the deadline pass while staged
        queue.release()
        outcomes = {"shed": 0, "served": 0, "other": 0}
        for future in futures:
            try:
                future.result(timeout=RESULT_TIMEOUT)
                outcomes["served"] += 1
            except RequestCancelled:
                outcomes["shed"] += 1
            except BaseException:  # noqa: BLE001
                outcomes["other"] += 1
        try:
            deadline_future.result(timeout=RESULT_TIMEOUT)
            deadline_ok = False
        except DeadlineExceeded:
            deadline_ok = True
        except BaseException:  # noqa: BLE001
            deadline_ok = False
        # The worker shrugs all of it off.
        queue.submit(**_sample(3200)).result(timeout=RESULT_TIMEOUT)
    shed = _counter("serve.shed_total") - shed_before
    expired = _counter("serve.deadline_expired_total") - expired_before
    return {
        "outcomes": outcomes,
        "shed_total": shed,
        "deadline_expired_total": expired,
        "cancelled_accepted": cancelled,
        "deadline_ok": deadline_ok,
        "ok": (
            outcomes["shed"] >= 1 and outcomes["served"] >= 1
            and outcomes["other"] == 0 and shed >= 1 and expired >= 1
            and deadline_ok and cancelled
        ),
    }


def scenario_supervision(batched, bias) -> dict:
    """An injected supervisor-level crash restarts the worker; the
    in-flight batch fails with the crash, later requests are served."""
    restarts_before = _counter("serve.worker_restarts_total")
    queue = BatchQueue(
        batched, max_batch=4, max_wait_ms=1.0, static_kwargs={"bias": bias}
    )
    original_dispatch = queue._dispatch
    crashed = threading.Event()

    def crash_once(batch):
        if not crashed.is_set():
            crashed.set()
            raise RuntimeError("injected supervisor-level crash")
        return original_dispatch(batch)

    queue._dispatch = crash_once
    with queue:
        doomed = queue.submit(**_sample(4000))
        try:
            doomed.result(timeout=RESULT_TIMEOUT)
            crash_surfaced = False
        except RuntimeError as exc:
            crash_surfaced = "supervisor-level crash" in str(exc)
        survivor = queue.submit(**_sample(4001)).result(timeout=RESULT_TIMEOUT)
    restarts = _counter("serve.worker_restarts_total") - restarts_before
    return {
        "crash_surfaced": crash_surfaced,
        "worker_restarts": restarts,
        "served_after_restart": bool(np.isfinite(survivor)),
        "ok": crash_surfaced and restarts >= 1 and bool(np.isfinite(survivor)),
    }


def _serving_threads() -> list:
    return [
        thread.name for thread in threading.enumerate()
        if thread.name.startswith("repro-batch-queue") and thread.is_alive()
    ]


def run_campaign(seed: int = 0, requests: int = 200,
                 enable_tracing: bool = True) -> dict:
    """Run every scenario under one seed and return the campaign report."""
    was_enabled = TRACER.enabled
    if enable_tracing and not was_enabled:
        TRACER.enable()
    try:
        batched_program, batched, base, bias = _build_kernel()
        scenarios = {
            "bisection": scenario_bisection(seed, requests, batched, base, bias),
            "breaker": scenario_breaker(seed, batched_program, batched, base, bias),
            "lifecycle": scenario_lifecycle(batched, bias),
            "supervision": scenario_supervision(batched, bias),
        }
        leaked = _serving_threads()
        snapshot = metrics_snapshot()
        counters = snapshot.get("counters", {})
        counters_present = all(
            name in counters and counters[name] > 0
            for name in (
                "serve.retries_total", "serve.shed_total", "serve.breaker_open_total",
            )
        )
        report = {
            "campaign": "serving-chaos",
            "seed": seed,
            "requests": requests,
            "scenarios": scenarios,
            "leaked_worker_threads": leaked,
            "counters_present": counters_present,
            "metrics": snapshot,
            "ok": (
                all(result["ok"] for result in scenarios.values())
                and not leaked and counters_present
            ),
        }
        return report
    finally:
        if enable_tracing and not was_enabled:
            TRACER.disable()


def main(argv: Optional[list] = None) -> int:
    """CLI: run the campaign, print a summary, write the JSON report."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fixed-seed chaos campaign against the serving runtime",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--out", default=None, help="path for the JSON report")
    args = parser.parse_args(argv)

    report = run_campaign(seed=args.seed, requests=args.requests)
    for name, result in report["scenarios"].items():
        print(f"  scenario {name:12s}: {'ok' if result['ok'] else 'FAILED'}")
    print(f"chaos campaign (seed {args.seed}): "
          f"{'ok' if report['ok'] else 'INVARIANT VIOLATED'}")
    if args.out:
        import os

        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, default=repr)
            handle.write("\n")
        print(f"report -> {args.out}")
    return 0 if report["ok"] else 1
