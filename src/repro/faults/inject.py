"""The kernel wrapper that consults a :class:`~repro.faults.plan.FaultPlan`.

:func:`inject` is deliberately tiny: it wraps any batched callable so that
every call first asks the plan whether to spike latency or raise an
:class:`~repro.faults.plan.InjectedFault`, then delegates.  Because the
wrapper sits *inside* the serving stack (queue → breaker → injected
kernel), every resilience mechanism sees injected faults exactly where
real kernel failures would surface.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import FaultPlan


def inject(fn: Callable, plan: FaultPlan) -> Callable:
    """Wrap ``fn`` so ``plan`` decides each call's fate before it runs.

    The returned callable exposes the plan as ``.plan`` and the wrapped
    callable as ``.__wrapped__`` for introspection.
    """

    def faulty(**kwargs):
        plan.on_call(kwargs)
        return fn(**kwargs)

    faulty.plan = plan
    faulty.__wrapped__ = fn
    return faulty
