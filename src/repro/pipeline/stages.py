"""Built-in pipeline stages.

Every existing compilation step is wrapped as a :class:`Pass` so the whole
frontend-to-binary flow is one ordered pipeline:

* :class:`ConstantBranchPruning` / :class:`DeadCodeElimination` — the paper's
  pre-AD cleanup (Section IV-B), default at ``optimize="O1"``;
* :class:`CommonSubexpressionElimination` / :class:`MapFusion` — the ``"O2"``
  tier: duplicate-work removal and producer/consumer map fusion, run before
  AD so both the forward and the generated backward pass benefit;
* :class:`GlobalValueNumbering` — cross-state duplicate-map merging over the
  liveness walk's global program order; the default O2+/O3 pipelines run it
  in place of the per-state CSE stage (which remains available by name);
* :class:`MemoryPlanning` — liveness-driven buffer reuse for transients,
  run *after* AD (gradient containers protected) and just before codegen,
  at O2+ by default;
* :class:`CheckpointingSelection` — resolves the user's checkpointing spec
  (strategy instance or name) into the strategy the AD stage consumes;
* :class:`Autodiff` — reverse-mode differentiation
  (:func:`repro.autodiff.add_backward_pass`);
* :class:`Codegen` — the terminal stage, emitting and compiling NumPy code
  via :func:`repro.codegen.compile_sdfg`.

Heavy imports happen inside ``apply`` to keep the package import-cycle free
(``autodiff`` itself imports the pipeline driver for its public API).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir import SDFG
from repro.pipeline.cache import stable_repr, unique_token
from repro.pipeline.pass_base import Pass, PassContext, PipelineError, register_pass


class ConstantBranchPruning(Pass):
    """Resolve conditionals whose conditions fold to compile-time constants
    (uses ``ctx.symbol_values`` for configuration symbols)."""

    name = "prune-constant-branches"

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.simplification import prune_constant_branches

        removed = prune_constant_branches(sdfg, ctx.symbol_values or None)
        ctx.note("conditionals_removed", removed)
        return sdfg


class DeadCodeElimination(Pass):
    """Remove compute nodes whose results cannot reach an output.

    Besides the default keep set (non-transients plus the return container),
    ``extra_keep`` preserves containers later stages depend on — a
    user-selected gradient ``output`` / ``wrt`` or explicit codegen
    ``result_names``.  ``build_pipeline`` derives it from the same arguments
    it configures those stages with, so the two cannot drift apart.
    """

    name = "dead-code-elimination"

    def __init__(self, extra_keep: Sequence[str] = ()) -> None:
        self.extra_keep = tuple(extra_keep)

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.simplification import eliminate_dead_code

        keep = {name for name in self.extra_keep if name in sdfg.arrays}
        removed = eliminate_dead_code(sdfg, extra_keep=keep)
        ctx.note("nodes_removed", removed)
        return sdfg

    def fingerprint(self) -> tuple:
        return (self.name, self.extra_keep)


class CommonSubexpressionElimination(Pass):
    """Deduplicate identical element-wise maps and repeated memlet reads
    within each state (see :func:`repro.passes.cse.eliminate_common_subexpressions`).

    ``extra_keep`` protects containers later stages name explicitly (gradient
    ``output``/``wrt``, codegen ``result_names``) from being merged away.
    """

    name = "common-subexpression-elimination"

    def __init__(self, extra_keep: Sequence[str] = ()) -> None:
        self.extra_keep = tuple(extra_keep)

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.cse import eliminate_common_subexpressions

        protect = {name for name in self.extra_keep if name in sdfg.arrays}
        nodes, conns = eliminate_common_subexpressions(sdfg, protect=protect)
        ctx.note("nodes_deduplicated", nodes)
        ctx.note("connectors_merged", conns)
        return sdfg

    def fingerprint(self) -> tuple:
        return (self.name, self.extra_keep)


class GlobalValueNumbering(Pass):
    """Merge duplicate element-wise maps across state boundaries (see
    :func:`repro.passes.gvn.global_value_numbering`) — the cross-state
    generalisation of :class:`CommonSubexpressionElimination`, which it
    subsumes in the default O2+/O3 pipelines.

    ``extra_keep`` protects containers later stages name explicitly
    (gradient ``output``/``wrt``, codegen ``result_names``).
    """

    name = "global-value-numbering"

    def __init__(self, extra_keep: Sequence[str] = ()) -> None:
        self.extra_keep = tuple(extra_keep)

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.gvn import global_value_numbering

        protect = {name for name in self.extra_keep if name in sdfg.arrays}
        result = global_value_numbering(sdfg, protect=protect)
        ctx.note("nodes_deduplicated", result.nodes_merged)
        ctx.note("connectors_merged", result.connectors_merged)
        return sdfg

    def fingerprint(self) -> tuple:
        return (self.name, self.extra_keep)


class MemoryPlanning(Pass):
    """Color non-overlapping transient live ranges into shared buffers (see
    :mod:`repro.passes.planning`), cutting allocated transient bytes.

    Runs *after* the AD stage so the backward program is planned too; the
    gradient containers (and the forward value container when it is
    returned) are derived from ``ctx.artifacts["backward"]`` and protected,
    on top of ``extra_keep`` and the return container.  Footprint counters
    (``planned_reuse``, ``peak_bytes_before``/``after``, ...) land in the
    pipeline report; ``allow_inplace`` is part of the cache fingerprint.
    """

    name = "memory-planning"

    def __init__(
        self, extra_keep: Sequence[str] = (), allow_inplace: bool = True
    ) -> None:
        self.extra_keep = tuple(extra_keep)
        self.allow_inplace = allow_inplace

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.planning import apply_memory_plan, plan_memory

        protect = {name for name in self.extra_keep if name in sdfg.arrays}
        backward = ctx.artifacts.get("backward")
        if backward is not None:
            protect |= {
                name for name in backward.gradient_names.values()
                if name in sdfg.arrays
            }
            if backward.output in sdfg.arrays:
                protect.add(backward.output)
        plan = plan_memory(
            sdfg,
            protect=protect,
            symbol_values=ctx.symbol_values,
            allow_inplace=self.allow_inplace,
        )
        reused = apply_memory_plan(sdfg, plan)
        ctx.note("planned_reuse", reused)
        ctx.note("buffers_shared",
                 sum(1 for members in plan.buffers if len(members) > 1))
        ctx.note("inplace_reuse", len(plan.inplace_guests))
        ctx.note("transient_bytes_before", plan.transient_bytes_before)
        ctx.note("transient_bytes_after", plan.transient_bytes_after)
        ctx.note("peak_bytes_before", plan.peak_bytes_before)
        ctx.note("peak_bytes_after", plan.peak_bytes_after)
        return sdfg

    def fingerprint(self) -> tuple:
        return (self.name, self.extra_keep, self.allow_inplace)


class MapFusion(Pass):
    """Fuse element-wise producer maps into their sole consumer, eliminating
    the materialised transient between them (see
    :func:`repro.passes.fusion.fuse_elementwise_maps`).

    Runs pre-AD: the backward pass is generated from the fused forward SDFG,
    so gradients see the same savings.  ``extra_keep`` protects containers a
    later stage differentiates or returns.

    With ``cost_driven=True`` (the ``"O3"`` tier) every candidate is priced
    by the static cost model (:mod:`repro.passes.cost`, knobs in
    ``cost_config``): reads at several distinct stencil offsets may fuse
    when the recompute-vs-traffic trade-off pays, and ``gradient_aware=True``
    declines fusions that would force the backward pass to recompute stored
    values.  Decision counts land in the pipeline report
    (``fused_stencil``, ``declined_gradient``, ...).

    ``backend`` calibrates the pricing: without an explicit ``cost_config``
    the knobs come from ``CostModelConfig.for_backend(backend)`` — native
    loops keep recomputed values in registers, so recompute is priced far
    cheaper than under the interpreted NumPy backend (see docs/cost-model.md).
    """

    name = "map-fusion"

    def __init__(
        self,
        extra_keep: Sequence[str] = (),
        cost_driven: bool = False,
        gradient_aware: bool = False,
        cost_config=None,
        backend: Optional[str] = None,
    ) -> None:
        self.extra_keep = tuple(extra_keep)
        self.cost_driven = cost_driven
        self.gradient_aware = gradient_aware
        self.cost_config = cost_config
        self.backend = backend

    def _resolved_config(self):
        from repro.passes.cost import CostModelConfig

        if self.cost_config is not None:
            return self.cost_config
        return CostModelConfig.for_backend(self.backend)

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.passes.cost import CostModel, summarize_decisions
        from repro.passes.fusion import fuse_elementwise_maps

        protect = {name for name in self.extra_keep if name in sdfg.arrays}
        model = None
        if self.cost_driven:
            model = CostModel(
                sdfg,
                symbol_values=ctx.symbol_values,
                config=self._resolved_config(),
            )
        fused = fuse_elementwise_maps(
            sdfg, protect=protect, cost_model=model,
            gradient_aware=self.gradient_aware,
        )
        ctx.note("maps_fused", fused)
        ctx.note("transients_eliminated", fused)
        if model is not None:
            for key, value in summarize_decisions(model.decisions).items():
                ctx.note(key, value)
        return sdfg

    def fingerprint(self) -> tuple:
        fp: tuple = (self.name, self.extra_keep)
        if self.cost_driven:
            fp += (
                "cost-driven",
                self.gradient_aware,
                self._resolved_config().fingerprint(),
            )
        return fp


class Validate(Pass):
    """Structural validation (cheap sanity net between transformations)."""

    name = "validate"

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        sdfg.validate()
        return sdfg


class CheckpointingSelection(Pass):
    """Resolve the checkpointing spec into a strategy on the context.

    Accepts a :class:`~repro.checkpointing.CheckpointingStrategy` instance,
    one of the names ``"store_all"`` / ``"recompute_all"``, or ``None`` (the
    store-all default).
    """

    name = "checkpointing-selection"

    def __init__(self, spec=None) -> None:
        self.spec = spec

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        ctx.strategy = _resolve_strategy(self.spec)
        ctx.note(
            "strategy",
            type(ctx.strategy).__name__ if ctx.strategy is not None else "store_all",
        )
        return sdfg

    def fingerprint(self) -> tuple:
        return (self.name, strategy_fingerprint(self.spec))


class Autodiff(Pass):
    """Reverse-mode AD: augment the forward SDFG with its backward pass and
    stash the :class:`BackwardPassResult` under ``ctx.artifacts["backward"]``."""

    name = "autodiff"

    def __init__(
        self,
        output: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> None:
        self.output = output
        self.inputs = list(inputs) if inputs is not None else None

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.autodiff.engine import add_backward_pass

        result = add_backward_pass(
            sdfg, output=self.output, inputs=self.inputs, strategy=ctx.strategy
        )
        ctx.artifacts["backward"] = result
        # Preserve the strategy's diagnostic report so warm (cached) compiles
        # can replay it onto the caller's strategy instance.
        ctx.artifacts["checkpoint_report"] = getattr(ctx.strategy, "last_report", None)
        ctx.note("gradients", sorted(result.gradient_names.values()))
        return result.sdfg

    def fingerprint(self) -> tuple:
        return (
            self.name,
            self.output,
            tuple(self.inputs) if self.inputs is not None else None,
        )


class Codegen(Pass):
    """Terminal stage: emit + compile executable code through the selected
    backend, stash the :class:`CompiledSDFG` under ``ctx.artifacts["compiled"]``.

    ``backend`` names a registered code generator (``None`` = the numpy
    default; see :mod:`repro.codegen.backend`).  A non-default backend that
    *declines* the program — :class:`UnsupportedFeatureError` from its
    emitter, or a missing C toolchain — triggers a clean per-program
    fallback to the numpy backend; the report records both the backend that
    actually ran (``backend``) and the fallback event (``backend_fallback``,
    e.g. ``cython→numpy: UnsupportedFeatureError(...)``).  The backend name
    is part of the pass fingerprint, so the same program compiled under two
    backends occupies two distinct compilation-cache entries.
    """

    name = "codegen"

    def __init__(
        self,
        func_name: Optional[str] = None,
        result_names: Optional[list[str]] = None,
        return_value: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.func_name = func_name
        self.result_names = result_names
        self.return_value = return_value
        self.backend = backend

    def apply(self, sdfg: SDFG, ctx: PassContext) -> SDFG:
        from repro.obs.trace import span as _span

        backward = ctx.artifacts.get("backward")
        func_name = self.func_name
        result_names = self.result_names
        if backward is not None:
            # Gradient compile: results are the gradient containers (and the
            # forward value with return_value=True), mirroring the legacy
            # GradientFunction layout exactly.
            if func_name is None:
                func_name = f"__grad_{sdfg.name}"
            if result_names is None:
                result_names = [
                    backward.gradient_names[name] for name in backward.gradient_names
                ]
                if self.return_value:
                    result_names = result_names + [backward.output]
        with _span("codegen.build", sdfg=sdfg.name,
                   backend=self.backend or "numpy") as sp:
            compiled = self._compile(sdfg, ctx, func_name, result_names)
            sp.set(ran_backend=compiled.backend)
        ctx.artifacts["compiled"] = compiled
        ctx.note("backend", compiled.backend)
        ctx.note("source_lines", compiled.source.count("\n") + 1)
        return sdfg

    def _compile(self, sdfg: SDFG, ctx: PassContext, func_name, result_names):
        from repro.codegen import compile_sdfg
        from repro.util.errors import UnsupportedFeatureError

        if self.backend in (None, "numpy"):
            return compile_sdfg(
                sdfg, func_name=func_name, result_names=result_names,
                backend=self.backend,
            )
        from repro.codegen.cython_backend.build import NativeToolchainError

        try:
            return compile_sdfg(
                sdfg, func_name=func_name, result_names=result_names,
                backend=self.backend,
            )
        except (UnsupportedFeatureError, NativeToolchainError) as exc:
            message = str(exc)
            if len(message) > 200:
                message = message[:200] + "..."
            ctx.note(
                "backend_fallback",
                f"{self.backend}→numpy: {type(exc).__name__}({message})",
            )
            return compile_sdfg(
                sdfg, func_name=func_name, result_names=result_names,
                backend="numpy",
            )

    def fingerprint(self) -> tuple:
        return (
            self.name,
            self.func_name,
            tuple(self.result_names) if self.result_names is not None else None,
            self.return_value,
            self.backend,
        )


def _resolve_strategy(spec):
    """Spec -> strategy instance (``None`` means the store-all default)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        from repro.checkpointing import RecomputeAll, StoreAll

        named = {"store_all": StoreAll, "recompute_all": RecomputeAll}
        if spec not in named:
            raise PipelineError(
                f"Unknown checkpointing strategy {spec!r}; options: {sorted(named)} "
                "or a CheckpointingStrategy instance"
            )
        return named[spec]()
    if hasattr(spec, "decide"):
        return spec
    raise PipelineError(f"Cannot use {spec!r} as a checkpointing strategy")


def strategy_fingerprint(spec) -> tuple:
    """Cache-key identity of a checkpointing spec.

    Strategies define ``cache_fingerprint()`` covering their configuration
    (the :class:`CheckpointingStrategy` hierarchy does).  For foreign objects
    without one, attributes are fingerprinted via :func:`stable_repr`; any
    attribute lacking a stable representation gets a process-unique token,
    forcing a cache miss rather than risking a false hit between two
    configurations the fingerprint cannot distinguish.
    """
    if spec is None:
        return ("store_all",)
    if isinstance(spec, str):
        return (spec,)
    custom = getattr(spec, "cache_fingerprint", None)
    if callable(custom):
        return (type(spec).__qualname__, custom())
    attrs = tuple(
        (key, stable_repr(value) or unique_token())
        for key, value in sorted(vars(spec).items())
    )
    return (type(spec).__qualname__, attrs)


def register_builtin_passes() -> None:
    """Populate the global registry with every built-in stage, so pipelines
    can be assembled by name (``PassManager(["map-fusion", "codegen"])``)."""
    for cls in (
        ConstantBranchPruning,
        DeadCodeElimination,
        CommonSubexpressionElimination,
        GlobalValueNumbering,
        MemoryPlanning,
        MapFusion,
        Validate,
        CheckpointingSelection,
        Autodiff,
        Codegen,
    ):
        register_pass(cls.name, cls)


register_builtin_passes()
