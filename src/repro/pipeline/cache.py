"""The compilation cache.

Keyed on ``(SDFG content hash, pipeline fingerprint, context fingerprint)``,
the cache maps a compilation request to the finished
:class:`~repro.codegen.CompiledSDFG` (plus the pipeline report and artifacts
such as the AD result), so repeated ``repro.compile`` / ``repro.grad`` calls
on an unchanged program skip parsing, simplification, AD and code emission
entirely.  Entries are evicted LRU beyond ``maxsize``.

Besides the per-instance :class:`CacheStats`, every lookup also feeds the
process-wide metrics registry (``cache.hits`` / ``cache.misses`` /
``cache.disk_hits`` counters, plus ``cache.spills`` for persisted entries),
so cache behaviour across *all* cache instances shows up in one
observability snapshot (``repro.obs.metrics_snapshot()``) and in
``format_pipeline_report`` — see ``docs/observability.md``.
"""

from __future__ import annotations

import itertools
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.obs.metrics import METRICS

_OBS_HITS = METRICS.counter("cache.hits")
_OBS_MISSES = METRICS.counter("cache.misses")
_OBS_DISK_HITS = METRICS.counter("cache.disk_hits")
_OBS_SPILLS = METRICS.counter("cache.spills")

_MISS_COUNTER = itertools.count()


def unique_token() -> str:
    """A process-unique token for values without a stable representation.

    Embedding it in a fingerprint forces a cache *miss* (each call yields a
    new token).  Unlike ``id()``, tokens are never reused, so they cannot
    produce a false hit after an address is recycled.
    """
    return f"@miss:{next(_MISS_COUNTER)}"


_MISS_TOKEN_RE = re.compile(r"@miss:\d+\Z")


def contains_miss_token(key) -> bool:
    """True if ``key`` embeds a :func:`unique_token` marker.

    Such a key can never be looked up again (each token is minted once), so
    storing an entry under it would only evict reusable entries and pin dead
    compiled objects in memory.  Tokens always appear as standalone key
    elements, so exact matching cannot false-positive on user strings (whose
    :func:`stable_repr` form is quoted).
    """
    if isinstance(key, str):
        return _MISS_TOKEN_RE.fullmatch(key) is not None
    if isinstance(key, (tuple, list)):
        return any(contains_miss_token(item) for item in key)
    return False


def stable_repr(value) -> Optional[str]:
    """A deterministic string form of ``value`` for cache fingerprints.

    Covers primitives (including NumPy scalars) and (nested) containers of
    primitives; returns ``None`` for anything without a stable representation
    (callers either drop such values or key them with :func:`unique_token`).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return f"{type(value).__name__}({value.item()!r})"
    if isinstance(value, (list, tuple)):
        parts = [stable_repr(item) for item in value]
        if any(part is None for part in parts):
            return None
        return "[" + ",".join(parts) + "]"
    if isinstance(value, (set, frozenset)):
        parts = [stable_repr(item) for item in value]
        if any(part is None for part in parts):
            return None
        return "{" + ",".join(sorted(parts)) + "}"
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            rendered_key = stable_repr(key)
            rendered_item = stable_repr(item)
            if rendered_key is None or rendered_item is None:
                return None
            parts.append(f"{rendered_key}:{rendered_item}")
        return "{" + ",".join(sorted(parts)) + "}"
    return None


@dataclass
class CacheEntry:
    """One cached compilation: the compiled object plus everything the
    pipeline produced alongside it."""

    key: tuple
    compiled: Any
    report: Any
    artifacts: dict[str, Any] = field(default_factory=dict)


@dataclass
class CacheStats:
    """Lookup counters of one :class:`CompilationCache` (reset by ``clear``).

    ``hits`` counts in-memory hits only; lookups served by loading a spilled
    entry from ``persist_dir`` count as ``disk_hits`` instead (both are
    "served from cache" for :attr:`hit_rate`).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (memory hits + disk hits + misses)."""
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0


class CompilationCache:
    """LRU cache of compiled SDFGs, with opt-in disk persistence.

    The default process-wide instance lives at
    :data:`repro.pipeline.DEFAULT_CACHE`; pass ``cache=False`` to the driver
    APIs to bypass caching for one call, or a private instance to isolate it.

    With ``persist_dir`` set, every stored entry is additionally *spilled*
    to ``<persist_dir>/<sha256(key)>.pkl`` via generated-source pickling
    (the :class:`~repro.codegen.CompiledSDFG` pickles its emitted source and
    re-``exec``-utes it on load), and an in-memory miss falls back to
    loading the spilled entry — so a warm *process start* skips parsing,
    simplification, AD and code emission, not just a warm call.  Disk loads
    count as ``stats.disk_hits``.  Entries whose artifacts cannot be
    pickled (foreign strategy objects, open handles) are simply not
    spilled; correctness never depends on persistence.  Only point
    ``persist_dir`` at a directory you trust — loading an entry executes
    its pickled source.
    """

    def __init__(self, maxsize: int = 128, persist_dir: Optional[str] = None) -> None:
        self.maxsize = maxsize
        self.persist_dir = persist_dir
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[CacheEntry]:
        """Fetch the entry under ``key`` (marking it most-recently used), or
        ``None`` on a miss.  Updates :attr:`stats` either way."""
        entry = self._entries.get(key)
        if entry is None:
            entry = self._load_spilled(key)
            if entry is None:
                self.stats.misses += 1
                _OBS_MISSES.inc()
                return None
            self.stats.disk_hits += 1
            _OBS_DISK_HITS.inc()
            self._insert(entry)
            return entry
        self._entries.move_to_end(key)
        self.stats.hits += 1
        _OBS_HITS.inc()
        return entry

    def store(self, entry: CacheEntry) -> CacheEntry:
        """Insert ``entry`` under its key, evicting least-recently-used
        entries beyond ``maxsize``; spill it to ``persist_dir`` if set."""
        self._insert(entry)
        self._spill(entry)
        return entry

    def clear(self) -> None:
        """Drop every in-memory entry and reset the statistics (spilled
        entries on disk are kept; delete the directory to drop those)."""
        self._entries.clear()
        self.stats = CacheStats()

    # -- persistence ------------------------------------------------------
    def _insert(self, entry: CacheEntry) -> None:
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _spill_path(self, key: tuple) -> str:
        import hashlib
        import os

        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.persist_dir, f"{digest}.pkl")

    def _spill(self, entry: CacheEntry) -> bool:
        """Best-effort write of one entry to disk (atomic rename)."""
        if self.persist_dir is None:
            return False
        import os
        import pickle

        try:
            payload = pickle.dumps(entry)
            os.makedirs(self.persist_dir, exist_ok=True)
            path = self._spill_path(entry.key)
            temp = f"{path}.tmp.{os.getpid()}"
            with open(temp, "wb") as handle:
                handle.write(payload)
            os.replace(temp, path)
        except Exception:  # noqa: BLE001 - unpicklable artifact or filesystem
            # trouble (read-only dir, full disk): persistence is best-effort,
            # the in-memory entry is already stored, never fail the compile.
            return False
        _OBS_SPILLS.inc()
        return True

    def _load_spilled(self, key: tuple) -> Optional[CacheEntry]:
        if self.persist_dir is None:
            return None
        import os
        import pickle

        path = self._spill_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except Exception:  # noqa: BLE001 - stale/corrupt spill: treat as miss
            return None
        if entry.key != key:  # hash collision or foreign file
            return None
        return entry

    def __repr__(self) -> str:
        return (
            f"CompilationCache({len(self)}/{self.maxsize} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


#: Process-wide cache shared by the top-level driver APIs.
DEFAULT_CACHE = CompilationCache()
