"""The ``Pass`` protocol, the per-run :class:`PassContext` and the registry.

A pass is a named SDFG-to-SDFG transformation.  Passes communicate through the
:class:`PassContext`: analysis passes stash artifacts (the AD result, the
compiled object) under ``ctx.artifacts`` and record human-readable diagnostics
with :meth:`PassContext.note`, which the :class:`~repro.pipeline.manager.PassManager`
collects into the per-pass records of the :class:`PipelineReport`.

Custom passes register themselves with :func:`register_pass` so pipelines can
be assembled by name (``build_pipeline(extra_passes=["my-pass"])``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.ir import SDFG
from repro.util.errors import PipelineError


@dataclass
class PassContext:
    """Shared mutable state threaded through one pipeline run.

    Attributes
    ----------
    symbol_values:
        Compile-time bindings of configuration symbols, consumed by
        constant-branch pruning.
    strategy:
        The resolved checkpointing strategy handed to the AD stage.
    options:
        Free-form per-run options (``wrt``, ``output``, ``return_value``).
    artifacts:
        Cross-pass products: ``"backward"`` (the :class:`BackwardPassResult`)
        and ``"compiled"`` (the :class:`CompiledSDFG`).
    info:
        Scratch notes of the *currently running* pass; the manager snapshots
        this into the pass's record and clears it between passes.
    """

    symbol_values: dict[str, object] = field(default_factory=dict)
    strategy: object = None
    options: dict[str, Any] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)
    info: dict[str, Any] = field(default_factory=dict)

    def note(self, key: str, value: Any) -> None:
        """Record a diagnostic that ends up in this pass's report record."""
        self.info[key] = value

    def fingerprint(self) -> tuple:
        """Cache-relevant part of the context (symbol bindings and options).

        Values without a stable representation are keyed by a process-unique
        token, which forces a cache miss rather than risking a false hit.
        """
        from repro.pipeline.cache import stable_repr, unique_token

        def rendered(value) -> str:
            stable = stable_repr(value)
            return stable if stable is not None else unique_token()

        return (
            tuple(sorted((k, rendered(v)) for k, v in self.symbol_values.items())),
            tuple(sorted((k, rendered(v)) for k, v in self.options.items())),
        )


class Pass:
    """Base class for pipeline stages.

    Subclasses set ``name`` and implement ``apply(sdfg, ctx)``, returning the
    (possibly new) SDFG.  Returning ``None`` means "transformed in place".
    ``fingerprint()`` must cover every constructor argument that changes the
    pass's output — it is part of the compilation-cache key.
    """

    name: str = "pass"

    def apply(self, sdfg: SDFG, ctx: PassContext) -> Optional[SDFG]:
        """Transform ``sdfg`` (in place or by returning a new one).

        The manager hands every pass a private copy of the caller's SDFG
        (copy-in), so passes may mutate freely; whatever the last pass leaves
        behind is the pipeline's result (copy-out).  Returning ``None`` means
        "transformed in place"; returning an SDFG replaces the current one.
        """
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Stable identity of this pass configuration for the compilation
        cache.  Must cover every constructor argument that changes the pass's
        output; two passes with equal fingerprints must produce identical
        results on identical inputs, or the cache will serve stale objects."""
        return (self.name,)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionPass(Pass):
    """Adapter turning a plain ``fn(sdfg, ctx) -> SDFG | None`` into a pass.

    The fingerprint hashes the wrapped function's bytecode, constants,
    closure, primitive-valued globals it reads, and (for bound methods) the
    receiver's state — anything without a stable representation gets a
    process-unique token, forcing a cache miss instead of a wrong hit.
    Mutating a *module-valued* global a pass calls through is outside this
    net; implement :class:`Pass` with an explicit ``fingerprint()`` for
    passes whose behaviour depends on such state.
    """

    def __init__(self, name: str, fn: Callable[[SDFG, PassContext], Optional[SDFG]]) -> None:
        self.name = name
        self.fn = fn

    def apply(self, sdfg: SDFG, ctx: PassContext) -> Optional[SDFG]:
        return self.fn(sdfg, ctx)

    def fingerprint(self) -> tuple:
        import hashlib

        from repro.pipeline.cache import stable_repr, unique_token

        func = getattr(self.fn, "__func__", self.fn)
        code = getattr(func, "__code__", None)
        if code is None:
            # Arbitrary callable object: no introspectable code, never share.
            return (self.name, unique_token())
        digest = hashlib.sha256(
            code.co_code + repr(code.co_consts).encode("utf-8")
        ).hexdigest()
        closure = tuple(
            stable_repr(cell.cell_contents) or unique_token()
            for cell in (func.__closure__ or ())
        )
        # Globals the bytecode reads: primitives by value, code-like objects
        # (modules/functions/classes) by qualified name, anything else by a
        # miss token — a mutated ndarray global must not produce a stale hit.
        import types

        def global_fingerprint(value) -> str:
            stable = stable_repr(value)
            if stable is not None:
                return stable
            if isinstance(
                value,
                (types.ModuleType, types.FunctionType, types.BuiltinFunctionType, type),
            ):
                qualname = getattr(value, "__qualname__", getattr(value, "__name__", ""))
                return f"ref:{getattr(value, '__module__', '')}.{qualname}"
            return unique_token()

        func_globals = getattr(func, "__globals__", {})
        read_globals = tuple(
            (name, global_fingerprint(func_globals[name]))
            for name in sorted(code.co_names)
            if name in func_globals
        )
        bound = getattr(self.fn, "__self__", None)
        if bound is None:
            bound_state = None
        else:
            try:
                bound_state = stable_repr(vars(bound)) or unique_token()
            except TypeError:
                bound_state = unique_token()
        return (
            self.name,
            getattr(func, "__module__", ""),
            getattr(func, "__qualname__", ""),
            digest,
            closure,
            read_globals,
            bound_state,
        )


#: Global name -> pass-factory registry (factories are zero-argument callables).
PASS_REGISTRY: dict[str, Callable[[], Pass]] = {}


def register_pass(name: str, factory: Callable[[], Pass]) -> None:
    """Register a pass factory under ``name`` for use in pipeline configs."""
    if name in PASS_REGISTRY:
        raise PipelineError(f"Pass {name!r} is already registered")
    PASS_REGISTRY[name] = factory


def make_pass(spec) -> Pass:
    """Resolve a pipeline entry: a :class:`Pass` instance, a registered name,
    or a callable ``fn(sdfg, ctx)`` (wrapped as a :class:`FunctionPass`)."""
    if isinstance(spec, Pass):
        return spec
    if isinstance(spec, str):
        if spec not in PASS_REGISTRY:
            raise PipelineError(
                f"Unknown pass {spec!r}; registered: {sorted(PASS_REGISTRY)}"
            )
        return PASS_REGISTRY[spec]()
    if callable(spec):
        return FunctionPass(getattr(spec, "__name__", "anonymous"), spec)
    raise PipelineError(f"Cannot build a pass from {spec!r}")


def available_passes() -> list[str]:
    """Sorted names of every registered pass (builtin + user-registered)."""
    return sorted(PASS_REGISTRY)
