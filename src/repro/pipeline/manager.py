"""The pass manager: ordered pipeline execution with per-pass instrumentation.

``PassManager.run`` executes the configured passes in order on (a copy of) the
input SDFG and records, for every pass, its wall-clock time and the change in
IR size (compute nodes and control-flow elements) into a
:class:`PipelineReport`.  The report is attached to compiled objects so users
can see where compilation time goes (``print(report.pretty())``).

Pass timing reads the obs monotonic clock (:mod:`repro.obs.clock`) and every
pass execution additionally opens a ``pipeline.<pass>`` tracing span (plus
one ``pipeline.run`` span around the whole pipeline), so an enabled tracer
(``repro.obs.enable()``) sees per-pass compilation time on the same clock
the report records — see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.ir import SDFG, State
from repro.obs.clock import monotonic_ns
from repro.obs.trace import span as _span
from repro.pipeline.pass_base import Pass, PassContext, make_pass


def ir_size(sdfg: SDFG) -> int:
    """Compute nodes plus control-flow elements — the "node count" whose
    per-pass delta the report tracks."""
    nodes = 0
    elements = 0
    for element in sdfg.all_elements():
        elements += 1
        if isinstance(element, State):
            nodes += len(element.nodes)
    return nodes + elements


@dataclass
class PassRecord:
    """Instrumentation of one pass execution."""

    name: str
    seconds: float
    nodes_before: int
    nodes_after: int
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def delta(self) -> int:
        """IR-size change caused by the pass (negative = IR shrank)."""
        return self.nodes_after - self.nodes_before

    def to_dict(self) -> dict:
        """JSON-serialisable form (benchmark scripts persist these)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "delta": self.delta,
            "info": dict(self.info),
        }


@dataclass
class PipelineReport:
    """Per-pass timings and IR-size deltas of one pipeline run."""

    pipeline: str = "pipeline"
    records: list[PassRecord] = field(default_factory=list)
    cache_hit: bool = False

    @property
    def total_seconds(self) -> float:
        """Sum of per-pass wall times (the pipeline's compile cost)."""
        return sum(record.seconds for record in self.records)

    @property
    def backend(self) -> Optional[str]:
        """Name of the code-generation backend that actually ran (recorded
        by the codegen stage; reflects fallbacks — a compile requested with
        ``backend="cython"`` that fell back reports ``"numpy"`` here, with
        the fallback event in the codegen record's notes).  Derived from the
        records, so cache hits report it for free."""
        record = self.record_for("codegen")
        if record is None:
            return None
        return record.info.get("backend")

    @property
    def backend_fallback(self) -> Optional[str]:
        """The fallback event (``"cython→numpy: ..."``) if one happened."""
        record = self.record_for("codegen")
        if record is None:
            return None
        return record.info.get("backend_fallback")

    def record_for(self, name: str) -> Optional[PassRecord]:
        """The first record of the pass called ``name``, or ``None`` if the
        pipeline did not run it."""
        for record in self.records:
            if record.name == name:
                return record
        return None

    def to_dict(self) -> dict:
        """JSON-serialisable form (benchmark scripts persist these)."""
        return {
            "pipeline": self.pipeline,
            "cache_hit": self.cache_hit,
            "backend": self.backend,
            "total_seconds": self.total_seconds,
            "passes": [record.to_dict() for record in self.records],
        }

    def pretty(self) -> str:
        """Plain-text table: one row per pass with wall time, IR size
        before/after and the pass's diagnostic notes."""
        from repro.harness.report import format_pipeline_report

        return format_pipeline_report(self)


class PassManager:
    """Runs an ordered pass pipeline over an SDFG.

    Parameters
    ----------
    passes:
        Pipeline entries — :class:`Pass` instances, registered pass names or
        plain ``fn(sdfg, ctx)`` callables (see :func:`make_pass`).
    name:
        Label used in reports and cache keys.
    """

    def __init__(self, passes: Sequence, name: str = "pipeline") -> None:
        self.passes: list[Pass] = [make_pass(spec) for spec in passes]
        self.name = name

    def fingerprint(self) -> tuple:
        """Stable identity of the configured pipeline (part of cache keys)."""
        return (self.name,) + tuple(p.fingerprint() for p in self.passes)

    def run(
        self,
        sdfg: SDFG,
        ctx: Optional[PassContext] = None,
        copy: bool = True,
    ) -> tuple[SDFG, PipelineReport]:
        """Execute the pipeline; returns the final SDFG and the report.

        With ``copy=True`` (the default) the input SDFG is never mutated —
        passes run on a deep copy, so callers can keep reusing their program.
        """
        ctx = ctx if ctx is not None else PassContext()
        current = sdfg.copy() if copy else sdfg
        report = PipelineReport(pipeline=self.name)
        with _span("pipeline.run", pipeline=self.name, sdfg=sdfg.name):
            for p in self.passes:
                before = ir_size(current)
                ctx.info = {}
                with _span(f"pipeline.{p.name}", pipeline=self.name):
                    start_ns = monotonic_ns()
                    result = p.apply(current, ctx)
                    elapsed = (monotonic_ns() - start_ns) / 1e9
                if result is not None:
                    current = result
                report.records.append(
                    PassRecord(
                        name=p.name,
                        seconds=elapsed,
                        nodes_before=before,
                        nodes_after=ir_size(current),
                        info=dict(ctx.info),
                    )
                )
        ctx.info = {}
        return current, report
