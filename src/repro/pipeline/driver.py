"""The compilation driver: pipeline assembly, caching and the top-level API.

``repro.compile(program, optimize="O0"|"O1"|"O2", checkpointing=...)`` is the
single entry point the rest of the package routes through:

* ``optimize="O1"`` (default) runs the paper's pre-AD cleanup — constant
  branch pruning followed by dead code elimination — before differentiation
  and code generation; ``"O0"`` compiles the program as written; ``"O2"``
  additionally deduplicates identical element-wise maps (CSE) and fuses
  producer/consumer maps so intermediate transients are never materialised;
  ``"O3"`` makes fusion cost-model-driven — stencil-offset reads fuse when
  modelled recompute cost stays below saved traffic, and gradient compiles
  decline fusions the backward pass would recompute (see
  docs/optimization-levels.md and docs/cost-model.md).
* When a gradient is requested (``gradient=True``, a ``wrt`` list, or a
  checkpointing spec), the pipeline appends checkpointing-strategy selection,
  the reverse-mode AD stage and the terminal codegen stage, and the call
  returns a :class:`~repro.autodiff.GradientFunction`.
* Results are cached in :data:`~repro.pipeline.cache.DEFAULT_CACHE` keyed on
  the SDFG content hash and the pipeline configuration — recompiling an
  unchanged program is a hash plus a dictionary lookup.

``grad`` / ``value_and_grad`` / ``Program.compile`` are thin wrappers over
these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from repro.ir import SDFG
from repro.pipeline.cache import (
    DEFAULT_CACHE,
    CacheEntry,
    CompilationCache,
    contains_miss_token,
)
from repro.pipeline.manager import PassManager, PipelineReport
from repro.pipeline.pass_base import PassContext, PipelineError
from repro.pipeline.stages import (
    Autodiff,
    Codegen,
    CheckpointingSelection,
    CommonSubexpressionElimination,
    ConstantBranchPruning,
    DeadCodeElimination,
    GlobalValueNumbering,
    MapFusion,
    MemoryPlanning,
)

#: Ordered simplification stages per optimization level.  Each entry is a
#: pass class or ``(class, extra_kwargs)``.  ``O0`` compiles the program as
#: written; ``O1`` is the paper's pre-AD cleanup; ``O2`` adds duplicate-work
#: elimination — global value numbering, the cross-state generalisation of
#: per-state CSE — and producer/consumer map fusion; ``O3`` runs the same
#: stages but makes fusion *cost-model-driven* (stencil offsets fuse when
#: the recompute-vs-traffic model pays, and gradient compiles decline
#: fusions the backward pass would have to recompute — see
#: repro/passes/cost.py and docs/cost-model.md).  All levels run before AD,
#: so gradients are generated from the optimised forward SDFG.  At O2+ the
#: pipeline also appends liveness-driven memory planning *after* AD (see
#: docs/memory-planning.md).  See docs/optimization-levels.md.
OPT_LEVELS: dict[str, tuple] = {
    "O0": (),
    "O1": (ConstantBranchPruning, DeadCodeElimination),
    "O2": (
        ConstantBranchPruning,
        DeadCodeElimination,
        GlobalValueNumbering,
        MapFusion,
    ),
    "O3": (
        ConstantBranchPruning,
        DeadCodeElimination,
        GlobalValueNumbering,
        (MapFusion, {"cost_driven": True}),
    ),
}

#: Stages that take an ``extra_keep`` tuple of containers they must preserve
#: even when those look dead/mergeable (gradient targets, result names).
_KEEP_AWARE = (
    DeadCodeElimination,
    CommonSubexpressionElimination,
    GlobalValueNumbering,
    MapFusion,
)


def to_sdfg(program) -> SDFG:
    """Lower any accepted program form (SDFG, ``@repro.program`` object or a
    plain annotated function) to its forward SDFG."""
    if isinstance(program, SDFG):
        return program
    to_sdfg_method = getattr(program, "to_sdfg", None)
    if callable(to_sdfg_method):
        return to_sdfg_method()
    if callable(program):
        from repro.frontend import parse_function

        return parse_function(program)
    raise PipelineError(f"Cannot lower {program!r} to an SDFG")


def build_pipeline(
    optimize: str = "O1",
    *,
    gradient: bool = False,
    checkpointing=None,
    wrt: Optional[Sequence[str]] = None,
    output: Optional[str] = None,
    return_value: bool = False,
    func_name: Optional[str] = None,
    result_names: Optional[list[str]] = None,
    extra_passes: Sequence = (),
    backend: Optional[str] = None,
    memory_planning: Optional[bool] = None,
) -> PassManager:
    """Assemble the default pipeline for one compilation request.

    ``extra_passes`` (pass instances, registered names or callables) are
    inserted after simplification and before AD/codegen.  ``backend``
    selects the code generator (``None`` = numpy) — it configures both the
    terminal codegen stage and, at ``"O3"``, the cost model that prices
    fusions (native loops make recompute far cheaper; see docs/backends.md).
    ``memory_planning`` forces the liveness-driven buffer-reuse stage on or
    off regardless of tier; the default ``None`` enables it at O2+.  The
    stage runs after AD (gradient containers protected) and immediately
    before codegen, and its knobs are part of the pipeline fingerprint.
    """
    if optimize not in OPT_LEVELS:
        raise PipelineError(
            f"Unknown optimization level {optimize!r}; options: {sorted(OPT_LEVELS)}"
        )
    # Containers downstream stages will need: simplification must not delete
    # them even when they are dead w.r.t. the program's return value.
    keep: list[str] = []
    for value in (output, wrt, result_names):
        keep.extend([value] if isinstance(value, str) else list(value or ()))
    passes: list = []
    for entry in OPT_LEVELS[optimize]:
        cls, kwargs = entry if isinstance(entry, tuple) else (entry, {})
        kwargs = dict(kwargs)
        if kwargs.get("cost_driven"):
            # Cost-driven fusion prices backward-pass recomputation only
            # when this compilation will actually differentiate.
            kwargs.setdefault("gradient_aware", gradient)
            kwargs.setdefault("backend", backend)
        if issubclass(cls, _KEEP_AWARE):
            kwargs.setdefault("extra_keep", tuple(keep))
        passes.append(cls(**kwargs))

    passes.extend(extra_passes)
    if gradient:
        passes.append(CheckpointingSelection(checkpointing))
        passes.append(Autodiff(output=output, inputs=wrt))
    plan_memory = (
        memory_planning if memory_planning is not None
        else optimize in ("O2", "O3")
    )
    if plan_memory:
        passes.append(MemoryPlanning(extra_keep=tuple(keep)))
    passes.append(
        Codegen(
            func_name=func_name,
            result_names=result_names,
            return_value=return_value,
            backend=backend,
        )
    )
    kind = "grad" if gradient else "forward"
    return PassManager(passes, name=f"{kind}-{optimize}")


@dataclass
class CompileOutcome:
    """Everything one driver invocation produced (or fetched from cache)."""

    compiled: Any
    report: PipelineReport
    artifacts: dict[str, Any] = field(default_factory=dict)
    cache_hit: bool = False
    key: Optional[tuple] = None


def run_pipeline(
    sdfg: SDFG,
    manager: PassManager,
    ctx: Optional[PassContext] = None,
    cache: Union[CompilationCache, bool, None] = None,
) -> CompileOutcome:
    """Run ``manager`` over ``sdfg`` with caching.

    ``cache=None`` or ``cache=True`` uses the process-wide default cache;
    ``cache=False`` disables caching for this call; a
    :class:`CompilationCache` instance uses that instance.  On a hit the
    cached :class:`CompiledSDFG` object itself is returned (no
    recompilation); the returned report is the cached pipeline report flagged
    with ``cache_hit=True``.
    """
    ctx = ctx if ctx is not None else PassContext()
    use_cache: Optional[CompilationCache]
    if cache is None or cache is True:
        use_cache = DEFAULT_CACHE
    elif cache is False:
        use_cache = None
    else:
        use_cache = cache

    key = None
    if use_cache is not None:
        key = (sdfg.content_hash(), manager.fingerprint(), ctx.fingerprint())
        if contains_miss_token(key):
            # A miss token makes the key un-reusable: compiling without
            # touching the cache beats evicting good entries for dead ones.
            use_cache = None
    if use_cache is not None:
        entry = use_cache.lookup(key)
        if entry is not None:
            report = PipelineReport(
                pipeline=entry.report.pipeline,
                records=entry.report.records,
                cache_hit=True,
            )
            # Keep the attribute in sync with the outcome of the *latest*
            # compile call (cold timings, flagged as a hit).
            entry.compiled.pipeline_report = report
            return CompileOutcome(
                compiled=entry.compiled,
                report=report,
                artifacts=dict(entry.artifacts),
                cache_hit=True,
                key=key,
            )

    _, report = manager.run(sdfg, ctx)
    compiled = ctx.artifacts.get("compiled")
    if compiled is None:
        raise PipelineError(
            f"Pipeline {manager.name!r} has no codegen stage; nothing was compiled"
        )
    compiled.pipeline_report = report
    outcome = CompileOutcome(
        compiled=compiled,
        report=report,
        artifacts=dict(ctx.artifacts),
        cache_hit=False,
        key=key,
    )
    if use_cache is not None:
        # Copy so caller mutations of outcome.artifacts cannot corrupt the entry.
        use_cache.store(
            CacheEntry(
                key=key, compiled=compiled, report=report,
                artifacts=dict(outcome.artifacts),
            )
        )
    return outcome


def compile_forward(
    program,
    optimize: str = "O1",
    *,
    symbol_values: Optional[Mapping[str, object]] = None,
    cache: Union[CompilationCache, bool, None] = None,
    extra_passes: Sequence = (),
    func_name: Optional[str] = None,
    result_names: Optional[list[str]] = None,
    backend: Optional[str] = None,
    memory_planning: Optional[bool] = None,
    profile: bool = False,
) -> CompileOutcome:
    """Compile the forward program through the pipeline (cached).

    With ``profile=True`` the returned ``outcome.compiled`` is wrapped in a
    :class:`~repro.obs.ProfiledCompiledSDFG`: every execution feeds
    per-kernel runtime histograms in the obs metrics registry (see
    docs/observability.md).  The wrapper is applied *after* caching, so the
    cache key and the cached object are unchanged.
    """
    sdfg = to_sdfg(program)
    manager = build_pipeline(
        optimize,
        extra_passes=extra_passes,
        func_name=func_name,
        result_names=result_names,
        backend=backend,
        memory_planning=memory_planning,
    )
    ctx = PassContext(
        symbol_values=dict(symbol_values or {}),
        options={"result_names": list(result_names) if result_names else None},
    )
    outcome = run_pipeline(sdfg, manager, ctx, cache=cache)
    if profile:
        from repro.obs.profile import profile_compiled

        outcome.compiled = profile_compiled(outcome.compiled)
    return outcome


def compile_gradient(
    program,
    wrt: Optional[Union[str, Sequence[str]]] = None,
    output: Optional[str] = None,
    checkpointing=None,
    return_value: bool = False,
    optimize: str = "O1",
    *,
    symbol_values: Optional[Mapping[str, object]] = None,
    cache: Union[CompilationCache, bool, None] = None,
    extra_passes: Sequence = (),
    backend: Optional[str] = None,
    memory_planning: Optional[bool] = None,
    profile: bool = False,
) -> CompileOutcome:
    """Compile the forward+backward program through the pipeline (cached).

    The outcome's ``artifacts["backward"]`` holds the
    :class:`BackwardPassResult` (gradient container names, activity analysis,
    storage plan).  ``profile=True`` wraps the compiled callable for
    per-execution runtime histograms, exactly as in :func:`compile_forward`.
    """
    if isinstance(wrt, str):
        wrt = [wrt]
    sdfg = to_sdfg(program)
    manager = build_pipeline(
        optimize,
        gradient=True,
        checkpointing=checkpointing,
        wrt=wrt,
        output=output,
        return_value=return_value,
        extra_passes=extra_passes,
        backend=backend,
        memory_planning=memory_planning,
    )
    ctx = PassContext(
        symbol_values=dict(symbol_values or {}),
        options={
            "wrt": list(wrt) if wrt is not None else None,
            "output": output,
            "return_value": return_value,
        },
    )
    outcome = run_pipeline(sdfg, manager, ctx, cache=cache)
    if outcome.cache_hit and hasattr(checkpointing, "last_report"):
        # The cached compile skipped strategy.decide(); replay the stored
        # diagnostic so strategy.last_report behaves as on a cold compile.
        report = outcome.artifacts.get("checkpoint_report")
        if report is not None:
            checkpointing.last_report = report
    if profile:
        from repro.obs.profile import profile_compiled

        outcome.compiled = profile_compiled(outcome.compiled)
    return outcome


def compile(  # noqa: A001 - deliberate: mirrors ``repro.compile``
    program,
    optimize: str = "O1",
    *,
    checkpointing=None,
    gradient: Optional[bool] = None,
    wrt: Optional[Union[str, Sequence[str]]] = None,
    output: Optional[str] = None,
    symbol_values: Optional[Mapping[str, object]] = None,
    cache: Union[CompilationCache, bool, None] = None,
    extra_passes: Sequence = (),
    backend: Optional[str] = None,
    memory_planning: Optional[bool] = None,
    profile: bool = False,
):
    """Top-level compilation entry point (re-exported as ``repro.compile``).

    Without gradient options this returns a :class:`CompiledSDFG` computing
    the forward program.  With ``gradient=True`` — or any of the gradient
    options ``wrt``, ``output`` or ``checkpointing`` — it returns a
    :class:`~repro.autodiff.GradientFunction`.  Both paths share the
    compilation cache: a second call on an unchanged program with the same
    configuration returns the previously compiled object.

    ``backend`` selects the code generator (``"numpy"`` default,
    ``"cython"`` for the native C backend with automatic per-program
    fallback — see docs/backends.md).  ``profile=True`` turns on per-call
    runtime profiling of the compiled callable: execution times land in
    per-kernel histograms of the obs metrics registry, including the
    native-segment vs NumPy-driver split under the cython backend (see
    docs/observability.md).
    """
    if gradient is None:
        gradient = wrt is not None or checkpointing is not None or output is not None
    elif not gradient and (wrt is not None or checkpointing is not None or output is not None):
        raise PipelineError(
            "gradient=False contradicts the gradient options wrt/output/checkpointing; "
            "drop gradient=False or the gradient options"
        )
    if gradient:
        from repro.autodiff.api import GradientFunction

        return GradientFunction(
            program,
            wrt=wrt,
            strategy=checkpointing,
            output=output,
            optimize=optimize,
            symbol_values=symbol_values,
            cache=cache,
            extra_passes=extra_passes,
            backend=backend,
            memory_planning=memory_planning,
            profile=profile,
        )
    outcome = compile_forward(
        program,
        optimize,
        symbol_values=symbol_values,
        cache=cache,
        extra_passes=extra_passes,
        backend=backend,
        memory_planning=memory_planning,
        profile=profile,
    )
    return outcome.compiled
