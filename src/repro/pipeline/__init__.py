"""Unified pass-manager & compilation pipeline.

The compilation flow (frontend lowering -> simplification -> reverse-mode AD
-> checkpointing -> NumPy codegen) is organised as an ordered pipeline of
:class:`Pass` stages run by a :class:`PassManager`, which records per-pass
wall time and IR-size deltas into a :class:`PipelineReport`.  A
:class:`CompilationCache` keyed on the SDFG content hash plus the pipeline
configuration makes repeated compilation of an unchanged program a dictionary
lookup.

Typical use::

    fwd = repro.compile(prog)                     # forward, O1, cached
    df = repro.compile(prog, wrt="A")             # gradient function
    print(df.report.pretty())                     # where compile time went

Custom passes plug in via ``register_pass`` + ``extra_passes=``::

    class MyPass(Pass):
        name = "my-pass"
        def apply(self, sdfg, ctx):
            ...
            return sdfg

    repro.compile(prog, extra_passes=[MyPass()])
"""

from repro.pipeline.cache import (
    CacheEntry,
    CacheStats,
    CompilationCache,
    DEFAULT_CACHE,
)
from repro.pipeline.driver import (
    CompileOutcome,
    build_pipeline,
    compile,
    compile_forward,
    compile_gradient,
    run_pipeline,
    to_sdfg,
)
from repro.pipeline.manager import PassManager, PassRecord, PipelineReport, ir_size
from repro.pipeline.pass_base import (
    FunctionPass,
    Pass,
    PassContext,
    PipelineError,
    available_passes,
    make_pass,
    register_pass,
)
from repro.pipeline.stages import (
    Autodiff,
    Codegen,
    CheckpointingSelection,
    CommonSubexpressionElimination,
    ConstantBranchPruning,
    DeadCodeElimination,
    GlobalValueNumbering,
    MapFusion,
    MemoryPlanning,
    Validate,
)

__all__ = [
    "Pass",
    "FunctionPass",
    "PassContext",
    "PipelineError",
    "register_pass",
    "make_pass",
    "available_passes",
    "PassManager",
    "PassRecord",
    "PipelineReport",
    "ir_size",
    "CompilationCache",
    "CacheEntry",
    "CacheStats",
    "DEFAULT_CACHE",
    "CompileOutcome",
    "build_pipeline",
    "run_pipeline",
    "compile",
    "compile_forward",
    "compile_gradient",
    "to_sdfg",
    "ConstantBranchPruning",
    "DeadCodeElimination",
    "CommonSubexpressionElimination",
    "GlobalValueNumbering",
    "MapFusion",
    "MemoryPlanning",
    "Validate",
    "CheckpointingSelection",
    "Autodiff",
    "Codegen",
]
