"""Command-line fuzz campaign driver: ``python -m repro.fuzz``.

Generates ``--programs`` seeded random programs (the hard-shape templates
always run first), differentially checks each one against the jaxlike
oracle, and writes a run report in the benchmark-results envelope.  The
exit status is non-zero iff any check *failed* — recorded
``UnsupportedFeatureError``/``AutodiffError`` skips are expected and
land in the report's ``skip_reasons`` histogram.

By default each program runs under a deterministic 8-configuration sample
of the full ``{O0..O3} x {forward, grad, vmap, vmap_grad} x {numpy,
cython}`` matrix (all four tiers, all four modes and both backends are
exercised across the sample); ``--full-matrix`` runs all 32 configurations
per program instead.  ``--planning`` doubles the configuration set by
running every sampled configuration once with memory planning forced on
and once forced off — a planner bug then shows up as a plan-on divergence
against the same oracle value.

Failures are minimized with the delta-debugging shrinker and — when
``--corpus-dir`` is given — saved as corpus entries, which the regression
suite (``tests/test_fuzz_corpus.py``) replays from then on.

The CI smoke job runs::

    python -m repro.fuzz --programs 200 --seed 20260807 \
        --out benchmarks/results/fuzz_differential.json
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys
import time
from typing import Optional

from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.generate import ProgramGenerator
from repro.fuzz.grammar import FuzzProgram
from repro.fuzz.harness import (
    BACKENDS,
    MODES,
    TIERS,
    CaseOutcome,
    CaseSpec,
    Config,
    DifferentialRunner,
    FailureSignature,
    SKIP_EXCEPTIONS,
    full_matrix,
)
from repro.fuzz.render import render_repro_source
from repro.fuzz.report import build_report, write_report
from repro.fuzz.shrink import shrink

#: Always-run anchors: cheapest and most aggressive tier, forward and grad.
_ANCHORS = (
    Config("O0", "forward", "numpy"),
    Config("O3", "forward", "numpy"),
    Config("O0", "grad", "numpy"),
    Config("O3", "grad", "numpy"),
)


def sample_configs(rng: random.Random) -> list[Config]:
    """A deterministic 8-config sample: the four numpy anchors, one vmap and
    one vmap∘grad draw, and two native-backend draws."""
    configs = list(_ANCHORS)
    configs.append(Config(rng.choice(TIERS), "vmap", "numpy"))
    configs.append(Config(rng.choice(TIERS), "vmap_grad", "numpy"))
    configs.append(Config(rng.choice(TIERS), "forward", "cython"))
    configs.append(Config(rng.choice(TIERS), rng.choice(MODES), "cython"))
    seen = set()
    unique = []
    for config in configs:
        if config not in seen:
            seen.add(config)
            unique.append(config)
    return unique


def with_planning_dimension(configs: list[Config]) -> list[Config]:
    """Duplicate every configuration with memory planning forced on and
    forced off (the ``--planning`` differential dimension)."""
    expanded = []
    for config in configs:
        expanded.append(dataclasses.replace(config, planning=True))
        expanded.append(dataclasses.replace(config, planning=False))
    return expanded


def run_program(program: FuzzProgram, configs: list[Config],
                ) -> list[CaseOutcome]:
    """All outcomes for one program (a build failure fails every config)."""
    spec = CaseSpec.from_program(program)
    try:
        runner = DifferentialRunner(spec)
    except SKIP_EXCEPTIONS as exc:
        return [CaseOutcome(program=program.name, config=config, status="skip",
                            reason=f"{type(exc).__name__}: {exc}",
                            error_type=type(exc).__name__)
                for config in configs]
    except Exception as exc:  # noqa: BLE001 - build crashes are findings
        return [CaseOutcome(program=program.name, config=config, status="fail",
                            reason=f"build-error: {exc}",
                            error_type=type(exc).__name__)
                for config in configs]
    return [runner.run(config) for config in configs]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzz campaign against the jaxlike oracle.",
    )
    parser.add_argument("--programs", type=int, default=200,
                        help="number of programs (templates included)")
    parser.add_argument("--seed", type=int, default=20260807,
                        help="generator seed (fully determines the run)")
    parser.add_argument("--full-matrix", action="store_true",
                        help="run all 32 configurations per program")
    parser.add_argument("--planning", action="store_true",
                        help="run every configuration with memory planning "
                             "forced on AND forced off")
    parser.add_argument("--out", default=None,
                        help="write the run report JSON here")
    parser.add_argument("--corpus-dir", default=None,
                        help="save minimized failures as corpus entries here")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing failures")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop shrinking/reporting detail after this many")
    args = parser.parse_args(argv)

    generator = ProgramGenerator(args.seed)
    programs = generator.generate(args.programs)
    matrix = list(full_matrix())
    started = time.time()
    outcomes: list[CaseOutcome] = []
    failures: list[tuple[FuzzProgram, CaseOutcome]] = []

    for index, program in enumerate(programs):
        if args.full_matrix:
            configs = matrix
        else:
            configs = sample_configs(random.Random(args.seed * 7 + index))
        if args.planning:
            configs = with_planning_dimension(configs)
        for outcome in run_program(program, configs):
            outcomes.append(outcome)
            if outcome.status == "fail":
                failures.append((program, outcome))
        if (index + 1) % 25 == 0 or index + 1 == len(programs):
            counts = {"ok": 0, "skip": 0, "fail": 0}
            for outcome in outcomes:
                counts[outcome.status] += 1
            print(f"[{index + 1}/{len(programs)}] "
                  f"ok={counts['ok']} skip={counts['skip']} "
                  f"fail={counts['fail']}", flush=True)

    elapsed = time.time() - started
    shrunk_info = []
    for program, outcome in failures[:args.max_failures]:
        print(f"\nFAIL {program.name} @ {outcome.config.label()}: "
              f"{outcome.reason}")
        minimized = program
        if not args.no_shrink:
            result = shrink(program, FailureSignature.of(outcome))
            minimized = result.program
            print(f"  shrunk {result.original_statements} -> "
                  f"{result.statements} statements "
                  f"({result.candidates_tried} candidates)")
        print(render_repro_source(minimized))
        if args.corpus_dir:
            entry = CorpusEntry.from_program(
                minimized,
                description=f"fuzzer catch: {outcome.reason}",
                origin=(f"python -m repro.fuzz --seed {args.seed} "
                        f"--programs {args.programs}"),
                configs=[outcome.config.label()],
            )
            path = entry.save(args.corpus_dir)
            print(f"  corpus entry written: {path}")
            shrunk_info.append({"program": program.name, "entry": str(path)})

    extra = {}
    if shrunk_info:
        extra["shrunk"] = shrunk_info
    if args.planning:
        extra["planning_dimension"] = True
    report = build_report(
        seed=args.seed, program_count=len(programs), outcomes=outcomes,
        elapsed_seconds=elapsed, full_matrix=args.full_matrix,
        extra=extra or None,
    )
    if args.out:
        path = write_report(args.out, report)
        print(f"\nreport written: {path}")
    counts = report["counts"]
    print(f"\n{report['program_count']} programs, {report['checks']} checks: "
          f"{counts['ok']} ok, {counts['skip']} skip "
          f"({len(report['skip_reasons'])} distinct reasons), "
          f"{counts['fail']} fail in {elapsed:.1f}s")
    return 1 if counts["fail"] else 0


if __name__ == "__main__":
    sys.exit(main())
