"""Differential-testing fuzzer for the repro compiler.

Random programs drawn from the frontend's supported subset
(:mod:`repro.fuzz.generate`, grammar in :mod:`repro.fuzz.grammar`) are
rendered to two independent executable forms (:mod:`repro.fuzz.render`)
and cross-checked under the full ``{O0..O3} x {forward, grad, vmap,
vmap∘grad} x {numpy, cython}`` configuration matrix against the loop-based
jaxlike oracle (:mod:`repro.fuzz.harness`).  Failures are minimized by a
delta-debugging shrinker (:mod:`repro.fuzz.shrink`) and serialized into a
replayable regression corpus (:mod:`repro.fuzz.corpus`); run metadata goes
through :mod:`repro.fuzz.report`.  ``python -m repro.fuzz`` drives a
campaign end to end.  See ``docs/fuzzing.md``.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    load_entry,
    parse_config,
    verify_entry,
)
from repro.fuzz.generate import ProgramGenerator, hard_templates
from repro.fuzz.grammar import ArgSpec, FuzzProgram, rebuild_shapes
from repro.fuzz.harness import (
    BACKENDS,
    MODES,
    TIERS,
    TOLERANCES,
    CaseOutcome,
    CaseSpec,
    Config,
    DifferentialRunner,
    FailureSignature,
    full_matrix,
    reproduces,
    run_case,
)
from repro.fuzz.render import (
    build_oracle,
    build_sdfg,
    render_oracle_source,
    render_repro_source,
)
from repro.fuzz.report import build_report, summarize, write_report
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "ArgSpec",
    "BACKENDS",
    "CaseOutcome",
    "CaseSpec",
    "Config",
    "CorpusEntry",
    "DifferentialRunner",
    "FailureSignature",
    "FuzzProgram",
    "MODES",
    "ProgramGenerator",
    "ShrinkResult",
    "TIERS",
    "TOLERANCES",
    "build_oracle",
    "build_report",
    "build_sdfg",
    "default_corpus_dir",
    "full_matrix",
    "hard_templates",
    "load_corpus",
    "load_entry",
    "parse_config",
    "rebuild_shapes",
    "render_oracle_source",
    "render_repro_source",
    "reproduces",
    "run_case",
    "shrink",
    "summarize",
    "verify_entry",
    "write_report",
]
