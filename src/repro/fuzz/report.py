"""Run metadata for fuzz campaigns, in the benchmark results envelope.

Mirrors ``benchmarks/_common.write_results``: one JSON document per run
with the environment block (interpreter, platform, NumPy, registered and
available codegen backends, C toolchain), the generator seed, program and
configuration counts, outcome totals, and — crucially — a histogram of
every recorded skip reason plus full detail for every failure.  "Zero
unexplained divergences" is checkable from the report alone: ``counts.fail
== 0`` and every skip carries a reason string.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from collections import Counter
from typing import Iterable, Optional

import numpy as np

from repro.fuzz.harness import CaseOutcome


def environment_metadata() -> dict:
    """Machine/toolchain context of a fuzz run (same shape as benchmarks)."""
    from repro.codegen import available_backends, registered_backends
    from repro.codegen.cython_backend import find_c_compiler, toolchain_description

    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": np.__version__,
        "backends_registered": registered_backends(),
        "backends_available": available_backends(),
        "c_compiler": find_c_compiler(),
        "c_toolchain": toolchain_description(),
    }


def summarize(outcomes: Iterable[CaseOutcome]) -> dict:
    """Aggregate outcomes into counts, skip-reason histogram and failures."""
    outcomes = list(outcomes)
    counts = Counter(outcome.status for outcome in outcomes)
    skip_reasons = Counter(
        outcome.reason for outcome in outcomes if outcome.status == "skip"
    )
    failures = [outcome.to_dict() for outcome in outcomes
                if outcome.status == "fail"]
    return {
        "checks": len(outcomes),
        "counts": {status: counts.get(status, 0)
                   for status in ("ok", "skip", "fail")},
        "skip_reasons": dict(sorted(skip_reasons.items())),
        "failures": failures,
    }


def build_report(*, seed: int, program_count: int,
                 outcomes: Iterable[CaseOutcome], elapsed_seconds: float,
                 full_matrix: bool, extra: Optional[dict] = None) -> dict:
    report = {
        "benchmark": "fuzz_differential",
        "environment": environment_metadata(),
        "seed": seed,
        "program_count": program_count,
        "full_matrix": full_matrix,
        "elapsed_seconds": round(elapsed_seconds, 3),
    }
    report.update(summarize(outcomes))
    if extra:
        report.update(extra)
    return report


def write_report(path: str, report: dict) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


__all__ = ["build_report", "environment_metadata", "summarize", "write_report"]
