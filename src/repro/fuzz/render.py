"""Render a :class:`~repro.fuzz.grammar.FuzzProgram` to executable forms.

Two renderings per program, sharing the statement structure but *nothing*
of the execution stack:

* :func:`render_repro_source` — the imperative NumPy function the repro
  frontend parses (slice assignment mutates arrays, ``np.`` intrinsics).
  :func:`build_sdfg` lowers that source through
  :class:`~repro.frontend.parser.ProgramParser` directly (no ``inspect``
  round-trip), so generated sources never need to exist on disk.
* :func:`render_oracle_source` — the purely functional twin executed by the
  :mod:`repro.baselines.jaxlike` baseline: ``jnp.`` intrinsics,
  ``A = A.at[...].set(...)`` updates, symbol sizes as keyword arguments.
  :func:`build_oracle` ``exec``s it and returns the callable; grad/vmap
  oracle values come from ``jaxlike.grad`` / ``jaxlike.vmap`` on top.

Keeping both renderings next to each other in one module makes the
correspondence reviewable line by line — the whole differential-testing
argument rests on these two translations being faithful to one grammar.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Callable

import numpy as np

from repro.baselines import jaxlike
from repro.baselines.jaxlike import numpy_api as jnp
from repro.frontend.annotations import ArraySpec, DTypeSpec
from repro.frontend.parser import ProgramParser
from repro.fuzz.grammar import (
    ArgSpec,
    Bin,
    Cmp,
    ExprNode,
    FuzzProgram,
    Lit,
    MatMul,
    Reduce,
    Ref,
    SAssign,
    SFor,
    SIf,
    SliceRead,
    SReturn,
    SSliceWrite,
    StmtNode,
    Transpose,
    Un,
    Where,
    Zeros,
    dim_text,
    items_text,
)
from repro.ir import SDFG
from repro.symbolic import Sym

_INDENT = "    "


# ------------------------------------------------------------- expressions
def _render_expr(expr: ExprNode, module: str) -> str:
    """Render one expression tree; ``module`` is ``"np"`` or ``"jnp"``."""
    if isinstance(expr, Lit):
        return repr(expr.value)
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, SliceRead):
        return f"{expr.name}[{items_text(expr.items)}]"
    if isinstance(expr, Un):
        inner = _render_expr(expr.x, module)
        if expr.fn == "-":
            return f"(-{inner})"
        return f"{module}.{expr.fn}({inner})"
    if isinstance(expr, (Bin, Cmp)):
        a = _render_expr(expr.a, module)
        b = _render_expr(expr.b, module)
        if expr.op in ("maximum", "minimum"):
            return f"{module}.{expr.op}({a}, {b})"
        return f"({a} {expr.op} {b})"
    if isinstance(expr, Where):
        cond = _render_expr(expr.cond, module)
        a = _render_expr(expr.a, module)
        b = _render_expr(expr.b, module)
        return f"{module}.where({cond}, {a}, {b})"
    if isinstance(expr, Reduce):
        inner = _render_expr(expr.x, module)
        args = [inner]
        if expr.axis is not None:
            args.append(f"axis={expr.axis}")
        if expr.keepdims:
            args.append("keepdims=True")
        return f"{module}.{expr.fn}({', '.join(args)})"
    if isinstance(expr, MatMul):
        a = _render_expr(expr.a, module)
        b = _render_expr(expr.b, module)
        return f"({a} @ {b})"
    if isinstance(expr, Transpose):
        inner = _render_expr(expr.x, module)
        if isinstance(expr.x, Ref):
            return f"{inner}.T"
        return f"({inner}).T"
    if isinstance(expr, Zeros):
        dims = ", ".join(dim_text(d) for d in expr.shape)
        return f"{module}.zeros(({dims}{',' if len(expr.shape) == 1 else ''}))"
    raise TypeError(f"Unknown expression node {expr!r}")


# -------------------------------------------------------------- statements
def _render_body(body: list[StmtNode], module: str, functional: bool,
                 depth: int) -> list[str]:
    pad = _INDENT * depth
    lines: list[str] = []
    for stmt in body:
        if isinstance(stmt, SAssign):
            lines.append(f"{pad}{stmt.target} = {_render_expr(stmt.expr, module)}")
        elif isinstance(stmt, SSliceWrite):
            window = items_text(stmt.items)
            value = _render_expr(stmt.expr, module)
            if functional:
                method = "add" if stmt.accumulate else "set"
                lines.append(
                    f"{pad}{stmt.target} = {stmt.target}.at[{window}].{method}({value})"
                )
            else:
                op = "+=" if stmt.accumulate else "="
                lines.append(f"{pad}{stmt.target}[{window}] {op} {value}")
        elif isinstance(stmt, SFor):
            stop = str(stmt.stop)
            header = (f"range({stop})" if stmt.start == 0
                      else f"range({stmt.start}, {stop})")
            lines.append(f"{pad}for {stmt.var} in {header}:")
            lines.extend(_render_body(stmt.body, module, functional, depth + 1))
        elif isinstance(stmt, SIf):
            lines.append(f"{pad}if {_render_expr(stmt.cond, module)}:")
            lines.extend(_render_body(stmt.then_body, module, functional, depth + 1))
            if stmt.else_body:
                lines.append(f"{pad}else:")
                lines.extend(_render_body(stmt.else_body, module, functional, depth + 1))
        elif isinstance(stmt, SReturn):
            lines.append(f"{pad}return {_render_expr(stmt.expr, module)}")
        else:
            raise TypeError(f"Unknown statement {stmt!r}")
    return lines


def _annotation(arg: ArgSpec, dtype: str) -> str:
    if not arg.is_array:
        return f"repro.{dtype}"
    dims = ", ".join(dim_text(d) for d in arg.shape)
    return f"repro.{dtype}[{dims}]"


def render_repro_source(program: FuzzProgram) -> str:
    """The imperative (frontend) rendering, as a complete function def."""
    params = ", ".join(
        f"{arg.name}: {_annotation(arg, program.dtype)}" for arg in program.args
    )
    lines = [f"def {program.name}({params}):"]
    lines.extend(_render_body(program.body, "np", functional=False, depth=1))
    return "\n".join(lines) + "\n"


def render_oracle_source(program: FuzzProgram) -> str:
    """The functional (jaxlike) rendering; symbols become keyword-only args."""
    params = ", ".join(arg.name for arg in program.args)
    if program.symbols:
        params += ", *, " + ", ".join(sorted(program.symbols))
    lines = [f"def {program.name}__oracle({params}):"]
    lines.extend(_render_body(program.body, "jnp", functional=True, depth=1))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------- builders
def arg_annotations(args: list[ArgSpec], dtype: str) -> dict[str, object]:
    """ProgramParser argument specs for a rendered program."""
    np_dtype = np.dtype(dtype)
    specs: dict[str, object] = {}
    for arg in args:
        if arg.is_array:
            shape = tuple(
                Sym(base) + offset if base is not None and offset != 0
                else (Sym(base) if base is not None else offset)
                for base, offset in arg.shape
            )
            specs[arg.name] = ArraySpec(np_dtype, shape)
        else:
            specs[arg.name] = DTypeSpec(np_dtype)
    return specs


def build_sdfg(source: str, args: list[ArgSpec], dtype: str,
               name: str = "fuzz_program") -> SDFG:
    """Lower rendered repro source to an SDFG via :class:`ProgramParser`.

    This is :func:`repro.frontend.parse_function` minus the ``inspect``
    machinery, so sources that only ever existed as strings (generated or
    loaded from the corpus) lower identically to decorated functions.
    """
    tree = ast.parse(textwrap.dedent(source))
    func_defs = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    if not func_defs:
        raise ValueError("Rendered source contains no function definition")
    func_ast = func_defs[0]
    func_ast.decorator_list = []
    parser = ProgramParser(name, arg_annotations(args, dtype))
    sdfg = parser.parse_function(func_ast)
    sdfg.return_name = parser.return_name  # type: ignore[attr-defined]
    return sdfg


def build_oracle(source: str) -> Callable:
    """``exec`` rendered oracle source with the jaxlike bindings in scope."""
    namespace: dict[str, object] = {"jnp": jnp, "jaxlike": jaxlike, "np": np}
    code = compile(textwrap.dedent(source), "<fuzz-oracle>", "exec")
    exec(code, namespace)  # noqa: S102 - our own rendered source
    functions = [value for key, value in namespace.items()
                 if callable(value) and key not in ("jnp", "jaxlike", "np")]
    if len(functions) != 1:
        raise ValueError("Oracle source must define exactly one function")
    return functions[0]


__all__ = [
    "arg_annotations",
    "build_oracle",
    "build_sdfg",
    "render_oracle_source",
    "render_repro_source",
]
