"""The differential harness: run one program under many configurations and
cross-check every result against the jaxlike oracle.

A configuration is one point of the matrix

    {O0, O1, O2, O3} x {forward, grad, vmap, vmap_grad} x {numpy, cython}

optionally crossed with the memory-planning knob (``--planning`` duplicates
every configuration with planning forced on and forced off, so a buffer-reuse
bug shows up as a plan-on/plan-off divergence against the same oracle).

For each configuration the program is compiled through the real pipeline
(:func:`repro.pipeline.compile_forward`, :class:`~repro.autodiff.api.
GradientFunction`, :func:`repro.vmap`) and executed on seeded random data;
the oracle value for the same mode is computed once by the loop-based
jaxlike baseline (``jaxlike.grad`` / ``jaxlike.vmap`` over the functional
rendering) and the two must agree to ``1e-9`` (float64) / ``1e-4``
(float32).

Outcomes are three-valued, and the distinction is the whole point:

* ``ok`` — compiled, ran, agreed (a recorded backend fallback still
  compares, it just notes the fallback reason);
* ``skip`` — the stack *declined* the configuration with a clear
  ``UnsupportedFeatureError`` / ``AutodiffError``; the reason is recorded so
  runs have zero silent coverage holes;
* ``fail`` — a divergence beyond tolerance or an unexpected exception.
  Failures carry enough context for the shrinker to reproduce them.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.autodiff.api import GradientFunction
from repro.baselines import jaxlike
from repro.batching import vmap as repro_vmap
from repro.fuzz.grammar import ArgSpec, FuzzProgram, shape_value
from repro.fuzz.render import (
    build_oracle,
    build_sdfg,
    render_oracle_source,
    render_repro_source,
)
from repro.pipeline import CompilationCache, compile_forward
from repro.util.errors import ReproError, UnsupportedFeatureError

TIERS = ("O0", "O1", "O2", "O3")
MODES = ("forward", "grad", "vmap", "vmap_grad")
BACKENDS = ("numpy", "cython")

#: Absolute/relative tolerance per dtype (the paper-level bar for float64;
#: float32 gets the cross-backend differential suite's looser bound).
TOLERANCES = {"float64": 1e-9, "float32": 1e-4}

#: Exceptions that mean "this configuration is legitimately outside the
#: supported subset" — recorded as skips, never as failures.  AutodiffError
#: covers declared AD gaps (e.g. batched matmul against shared weights);
#: NativeToolchainError-style declines surface as UnsupportedFeatureError
#: via the backend registry.
SKIP_EXCEPTIONS: tuple = (UnsupportedFeatureError,)
try:  # AutodiffError is a declared limitation channel, not a crash.
    from repro.util.errors import AutodiffError

    SKIP_EXCEPTIONS = SKIP_EXCEPTIONS + (AutodiffError,)
except ImportError:  # pragma: no cover
    pass


@dataclass(frozen=True)
class Config:
    """One point of the differential matrix.

    ``planning`` forces the memory-planning pass on (``True``) or off
    (``False``); ``None`` keeps the tier's default (on at O2+).
    """

    tier: str
    mode: str
    backend: str
    planning: Optional[bool] = None

    def label(self) -> str:
        base = f"{self.tier}/{self.mode}/{self.backend}"
        if self.planning is None:
            return base
        return base + ("/plan-on" if self.planning else "/plan-off")


def full_matrix() -> tuple[Config, ...]:
    """Every configuration, in deterministic order."""
    return tuple(
        Config(tier, mode, backend)
        for tier in TIERS for mode in MODES for backend in BACKENDS
    )


@dataclass
class CaseOutcome:
    """Result of one (program, configuration) differential check."""

    program: str
    config: Config
    status: str  # "ok" | "skip" | "fail"
    reason: str = ""
    error_type: str = ""
    max_err: float = 0.0
    backend_fallback: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "program": self.program,
            "config": self.config.label(),
            "status": self.status,
        }
        if self.reason:
            payload["reason"] = self.reason
        if self.error_type:
            payload["error_type"] = self.error_type
        if self.backend_fallback:
            payload["backend_fallback"] = self.backend_fallback
        if self.status == "fail" and self.max_err:
            payload["max_err"] = self.max_err
        return payload


@dataclass
class CaseSpec:
    """Everything needed to replay one program differentially.

    Carries *rendered sources* rather than grammar trees, so corpus entries
    (JSON on disk) and freshly generated programs run through the exact same
    code path.
    """

    name: str
    dtype: str
    args: list[ArgSpec]
    symbols: dict[str, int]
    repro_source: str
    oracle_source: str
    data_seed: int = 0
    batch: int = 2
    atol: Optional[float] = None

    @classmethod
    def from_program(cls, program: FuzzProgram, batch: int = 2) -> "CaseSpec":
        return cls(
            name=program.name,
            dtype=program.dtype,
            args=list(program.args),
            symbols=dict(program.symbols),
            repro_source=render_repro_source(program),
            oracle_source=render_oracle_source(program),
            data_seed=program.data_seed,
            batch=batch,
        )

    @property
    def tolerance(self) -> float:
        return self.atol if self.atol is not None else TOLERANCES[self.dtype]

    def wrt(self) -> list[str]:
        return [arg.name for arg in self.args if arg.is_array]

    def make_data(self) -> dict[str, object]:
        """Seeded random inputs: positive, O(1) magnitudes, away from zero
        (so ``/``, ``log`` and ``sqrt`` operands built by the generator stay
        well-conditioned in both engines)."""
        rng = np.random.default_rng(self.data_seed)
        dtype = np.dtype(self.dtype)
        data: dict[str, object] = {}
        for arg in self.args:
            if arg.is_array:
                concrete = shape_value(arg.shape, self.symbols)
                data[arg.name] = (rng.random(concrete) + 0.35).astype(dtype)
            else:
                data[arg.name] = float(rng.random() + 0.5)
        return data

    def make_batched_data(self) -> dict[str, object]:
        """Per-sample-distinct stacked inputs for the vmap modes."""
        rng = np.random.default_rng(self.data_seed + 1)
        dtype = np.dtype(self.dtype)
        data: dict[str, object] = {}
        for arg in self.args:
            if arg.is_array:
                concrete = (self.batch,) + shape_value(arg.shape, self.symbols)
                data[arg.name] = (rng.random(concrete) + 0.35).astype(dtype)
            else:
                data[arg.name] = float(rng.random() + 0.5)
        return data

    def in_axes(self) -> dict[str, Optional[int]]:
        """Batch every array argument, broadcast scalars."""
        return {arg.name: 0 for arg in self.args if arg.is_array}

    def oracle_in_axes(self) -> tuple:
        return tuple(0 if arg.is_array else None for arg in self.args)


def _copy_data(data: dict[str, object]) -> dict[str, object]:
    return {k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
            for k, v in data.items()}


def _to_numpy(value) -> np.ndarray:
    if isinstance(value, jaxlike.DeviceArray):
        return np.asarray(value.value)
    return np.asarray(value)


def _first_line(exc: BaseException) -> str:
    text = str(exc).strip().splitlines()
    return text[0] if text else type(exc).__name__


class DifferentialRunner:
    """Runs one :class:`CaseSpec` across configurations against the oracle.

    The SDFG is lowered once (pipeline passes run on copies) and all
    configurations share one :class:`CompilationCache` instance — which
    doubles as an adversarial test of cache-key separation: a key collision
    between two configurations would surface as a divergence.
    """

    def __init__(self, spec: CaseSpec) -> None:
        self.spec = spec
        self.sdfg = build_sdfg(spec.repro_source, spec.args, spec.dtype, spec.name)
        self.oracle: Callable = build_oracle(spec.oracle_source)
        self.data = spec.make_data()
        self.batched_data = spec.make_batched_data()
        self.cache = CompilationCache(maxsize=256)
        self._oracle_values: dict[str, object] = {}

    # ---------------------------------------------------------- oracle side
    def _positional(self, data: dict[str, object]) -> list[object]:
        return [data[arg.name] for arg in self.spec.args]

    def oracle_value(self, mode: str):
        """The jaxlike reference result for one mode (computed once)."""
        if mode in self._oracle_values:
            return self._oracle_values[mode]
        spec = self.spec
        kwargs = dict(spec.symbols)
        wrt_idx = tuple(
            i for i, arg in enumerate(spec.args) if arg.is_array
        )
        if mode == "forward":
            # Wrap arrays so functional updates (``x.at[...]``) work; grad
            # and vmap wrap their arguments themselves.
            positional = [
                jaxlike.DeviceArray(v) if isinstance(v, np.ndarray) else v
                for v in self._positional(_copy_data(self.data))
            ]
            out = self.oracle(*positional, **kwargs)
            value = _to_numpy(out)
        elif mode == "grad":
            grads = jaxlike.grad(self.oracle, argnums=wrt_idx)(
                *self._positional(_copy_data(self.data)), **kwargs
            )
            value = {name: _to_numpy(g)
                     for name, g in zip(spec.wrt(), grads)}
        elif mode == "vmap":
            out = jaxlike.vmap(self.oracle, in_axes=spec.oracle_in_axes())(
                *self._positional(_copy_data(self.batched_data)), **kwargs
            )
            value = _to_numpy(out)
        elif mode == "vmap_grad":
            out = jaxlike.vmap(
                jaxlike.grad(self.oracle, argnums=wrt_idx),
                in_axes=spec.oracle_in_axes(),
            )(*self._positional(_copy_data(self.batched_data)), **kwargs)
            stacked = out if isinstance(out, tuple) else (out,)
            value = {name: _to_numpy(g)
                     for name, g in zip(spec.wrt(), stacked)}
        else:
            raise ValueError(f"Unknown mode {mode!r}")
        self._oracle_values[mode] = value
        return value

    # ----------------------------------------------------------- repro side
    def _repro_value(self, config: Config):
        """Compile and run one configuration; returns (value, fallback)."""
        spec = self.spec
        backend = config.backend if config.backend != "numpy" else None
        planning = config.planning
        if config.mode == "forward":
            outcome = compile_forward(
                self.sdfg, config.tier, cache=self.cache, backend=backend,
                memory_planning=planning,
            )
            value = outcome.compiled(**_copy_data(self.data))
            return np.asarray(value), outcome.report.backend_fallback
        if config.mode == "grad":
            gf = GradientFunction(
                self.sdfg, wrt=spec.wrt(), optimize=config.tier,
                cache=self.cache, backend=backend, memory_planning=planning,
            )
            raw = gf(**_copy_data(self.data))
            if not isinstance(raw, dict):
                raw = {spec.wrt()[0]: raw}
            return ({k: np.asarray(v) for k, v in raw.items()},
                    gf.report.backend_fallback)
        if config.mode == "vmap":
            batched = repro_vmap(self.sdfg, in_axes=spec.in_axes())
            compiled = batched.compile(
                config.tier, cache=self.cache, backend=backend,
                memory_planning=planning,
            )
            value = compiled(**_copy_data(self.batched_data))
            fallback = getattr(compiled.pipeline_report, "backend_fallback", None)
            return np.asarray(value), fallback
        if config.mode == "vmap_grad":
            gf = GradientFunction(
                self.sdfg, wrt=spec.wrt(), optimize=config.tier,
                cache=self.cache, backend=backend, memory_planning=planning,
            )
            batched_gf = repro_vmap(gf, in_axes=spec.in_axes())
            raw = batched_gf(**_copy_data(self.batched_data))
            if not isinstance(raw, dict):
                raw = {spec.wrt()[0]: raw}
            return ({k: np.asarray(v) for k, v in raw.items()},
                    batched_gf.report.backend_fallback)
        raise ValueError(f"Unknown mode {config.mode!r}")

    # ----------------------------------------------------------- comparison
    def _compare(self, actual, expected, tol: float) -> tuple[bool, float]:
        if isinstance(expected, dict):
            worst = 0.0
            for name, exp in expected.items():
                act = actual.get(name)
                if act is None:
                    return False, float("inf")
                ok, err = self._compare(act, exp, tol)
                worst = max(worst, err)
                if not ok:
                    return False, worst
            return True, worst
        actual = np.asarray(actual, dtype=np.float64)
        expected = np.asarray(expected, dtype=np.float64)
        if actual.shape != expected.shape:
            return False, float("inf")
        err = float(np.max(np.abs(actual - expected))) if actual.size else 0.0
        ok = bool(np.allclose(actual, expected, rtol=tol, atol=tol))
        return ok, err

    def run(self, config: Config) -> CaseOutcome:
        """One differential check; never raises for program-level problems."""
        spec = self.spec
        try:
            expected = self.oracle_value(config.mode)
        except Exception as exc:  # noqa: BLE001 - oracle bugs are harness bugs
            return CaseOutcome(
                program=spec.name, config=config, status="fail",
                reason=f"oracle-error: {_first_line(exc)}",
                error_type=type(exc).__name__,
            )
        try:
            actual, fallback = self._repro_value(config)
        except SKIP_EXCEPTIONS as exc:
            return CaseOutcome(
                program=spec.name, config=config, status="skip",
                reason=f"{type(exc).__name__}: {_first_line(exc)}",
                error_type=type(exc).__name__,
            )
        except ReproError as exc:
            return CaseOutcome(
                program=spec.name, config=config, status="fail",
                reason=f"compile-or-run-error: {_first_line(exc)}",
                error_type=type(exc).__name__,
            )
        except Exception as exc:  # noqa: BLE001 - crashes are findings
            return CaseOutcome(
                program=spec.name, config=config, status="fail",
                reason=f"crash: {_first_line(exc)}",
                error_type=type(exc).__name__,
            )
        ok, err = self._compare(actual, expected, spec.tolerance)
        if not ok:
            return CaseOutcome(
                program=spec.name, config=config, status="fail",
                reason=f"divergence (max err {err:.3e} > {spec.tolerance:g})",
                error_type="Divergence", max_err=err,
                backend_fallback=fallback,
            )
        return CaseOutcome(
            program=spec.name, config=config, status="ok", max_err=err,
            backend_fallback=fallback,
        )


def run_case(spec: CaseSpec, configs: Optional[list[Config]] = None,
             ) -> list[CaseOutcome]:
    """Run one case spec over ``configs`` (default: the full matrix).

    Building the runner itself can raise for out-of-subset programs — e.g.
    hand-written corpus sources the frontend must *reject*; callers that
    expect that use :func:`build_sdfg` directly instead.
    """
    runner = DifferentialRunner(spec)
    return [runner.run(config) for config in configs or list(full_matrix())]


@dataclass
class FailureSignature:
    """What makes two failures 'the same bug' for shrinking purposes."""

    config: Config
    error_type: str

    @classmethod
    def of(cls, outcome: CaseOutcome) -> "FailureSignature":
        return cls(config=outcome.config, error_type=outcome.error_type)


def reproduces(program: FuzzProgram, signature: FailureSignature,
               batch: int = 2) -> bool:
    """Shrinker predicate: does ``program`` still fail the same way?

    Invalid candidates (shape errors, undefined names after an edit, or any
    exception while *building* the case) count as "does not reproduce".
    """
    try:
        spec = CaseSpec.from_program(program, batch=batch)
        runner = DifferentialRunner(spec)
        outcome = runner.run(signature.config)
    except Exception:  # noqa: BLE001 - invalid shrink candidate
        return False
    return outcome.status == "fail" and outcome.error_type == signature.error_type


def format_traceback(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


__all__ = [
    "BACKENDS",
    "CaseOutcome",
    "CaseSpec",
    "Config",
    "DifferentialRunner",
    "FailureSignature",
    "MODES",
    "SKIP_EXCEPTIONS",
    "TIERS",
    "TOLERANCES",
    "full_matrix",
    "reproduces",
    "run_case",
]
