"""The fuzzer's program representation: a mini-AST over the frontend subset.

Random programs are built from these nodes (by :mod:`repro.fuzz.generate`),
rendered to *two* independent executable forms (by :mod:`repro.fuzz.render`):

* imperative NumPy source lowered through the repro frontend/pipeline, and
* a purely functional source executed by the loop-based
  :mod:`repro.baselines.jaxlike` oracle (``.at[...].set`` instead of slice
  assignment, ``jnp`` instead of ``np``).

The node set deliberately mirrors what ``repro.frontend`` supports:
element-wise arithmetic, constant-offset (stencil) slices, single-index
subscripts with loop iterators, reductions (sum/mean/max/min with an
optional axis), matmul / transpose library calls, ``for range`` loops and
scalar-condition branches.  Shapes are tracked symbolically as
``(symbol, offset)`` pairs so the generator can only produce well-typed
programs; anything outside the subset (negative-step slices, while loops,
indirection) is *not expressible* here — those cases live as hand-written
corpus entries asserting the frontend rejects them cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

# --------------------------------------------------------------------- dims
#: One symbolic dimension: ``(base symbol or None, integer offset)``.
#: ``("N", -2)`` is the length of ``A[1:-1]`` for ``A: float64[N]``;
#: ``(None, 4)`` is a concrete size 4.
Dim = tuple[Optional[str], int]
Shape = tuple[Dim, ...]


def dim(base: Union[str, int], offset: int = 0) -> Dim:
    """Normalise ``"N"`` / ``5`` (+ optional offset) into a :data:`Dim`."""
    if isinstance(base, str):
        return (base, offset)
    return (None, base + offset)


def dim_text(d: Dim) -> str:
    """Render one dimension as Python/annotation source text."""
    base, offset = d
    if base is None:
        return str(offset)
    if offset == 0:
        return base
    return f"{base} {'+' if offset > 0 else '-'} {abs(offset)}"


def dim_value(d: Dim, symbols: dict[str, int]) -> int:
    """Concrete size of a dimension under a symbol binding."""
    base, offset = d
    return (symbols[base] if base is not None else 0) + offset


def shape_value(shape: Shape, symbols: dict[str, int]) -> tuple[int, ...]:
    return tuple(dim_value(d, symbols) for d in shape)


def broadcast(a: Shape, b: Shape) -> Shape:
    """Combine element-wise operand shapes, NumPy style.

    Scalars broadcast against anything; equal-rank shapes combine dimension
    by dimension, a concrete size-1 dimension (``keepdims`` reductions)
    stretching to its partner.  Anything else is a generator bug.
    """
    if a == ():
        return b
    if b == ():
        return a
    if len(a) != len(b):
        raise ValueError(f"Shape rank mismatch in generated program: {a} vs {b}")
    out: list[Dim] = []
    for da, db in zip(a, b):
        if da == db:
            out.append(da)
        elif da == (None, 1):
            out.append(db)
        elif db == (None, 1):
            out.append(da)
        else:
            raise ValueError(f"Shape mismatch in generated program: {a} vs {b}")
    return tuple(out)


# --------------------------------------------------------------- subscripts
@dataclass(frozen=True)
class SliceItem:
    """A constant-offset slice ``lo : -hi`` of one dimension.

    ``lo >= 0`` trims from the start, ``hi <= 0`` trims from the end
    (``0`` = open end) — exactly the stencil-window reads the fusion passes
    reason about (``A[1:]``, ``A[:-2]``, ``A[1:-1]``, ...).
    """

    lo: int = 0
    hi: int = 0

    def text(self) -> str:
        lo = str(self.lo) if self.lo else ""
        hi = str(self.hi) if self.hi else ""
        return f"{lo}:{hi}"

    def out_dim(self, d: Dim) -> Dim:
        return (d[0], d[1] - self.lo + self.hi)


@dataclass(frozen=True)
class IndexItem:
    """A single scalar index: a constant or an iterator expression.

    ``term`` is rendered verbatim (``"2"``, ``"i"``, ``"i - 1"``); the
    generator only emits iterator terms that are in bounds for the loop
    ranges it creates.
    """

    term: str

    def text(self) -> str:
        return self.term


Item = Union[SliceItem, IndexItem]


def items_text(items: Sequence[Item]) -> str:
    return ", ".join(item.text() for item in items)


def window_shape(shape: Shape, items: Sequence[Item]) -> Shape:
    """Shape of ``A[items]`` given the shape of ``A``."""
    if len(items) > len(shape):
        raise ValueError("Too many subscript items for shape")
    out: list[Dim] = []
    for position, d in enumerate(shape):
        if position >= len(items):
            out.append(d)
        elif isinstance(items[position], SliceItem):
            out.append(items[position].out_dim(d))
    return tuple(out)


# -------------------------------------------------------------- expressions
@dataclass
class Ref:
    """A whole live value (argument, transient or scalar) by name."""

    name: str
    shape: Shape = ()


@dataclass
class Lit:
    """A literal scalar constant."""

    value: float
    shape: Shape = ()


@dataclass
class SliceRead:
    """A stencil-offset / indexed read ``name[items]``."""

    name: str
    items: tuple[Item, ...]
    shape: Shape = ()


@dataclass
class Un:
    """A unary element-wise operation (``fn`` in :data:`UNARY_FNS` or "-")."""

    fn: str
    x: "ExprNode"
    shape: Shape = ()


@dataclass
class Bin:
    """A binary element-wise operation (``op`` in :data:`BINARY_OPS`)."""

    op: str
    a: "ExprNode"
    b: "ExprNode"
    shape: Shape = ()


@dataclass
class Cmp:
    """An element-wise comparison (used by :class:`Where` and branch tests)."""

    op: str
    a: "ExprNode"
    b: "ExprNode"
    shape: Shape = ()


@dataclass
class Where:
    """``np.where(cond, a, b)``."""

    cond: Cmp
    a: "ExprNode"
    b: "ExprNode"
    shape: Shape = ()


@dataclass
class Reduce:
    """A reduction library call (``fn`` in :data:`REDUCE_FNS`)."""

    fn: str
    x: "ExprNode"
    axis: Optional[int] = None
    keepdims: bool = False
    shape: Shape = ()


@dataclass
class MatMul:
    """``a @ b`` (2-D/1-D operand rank combinations as in the frontend)."""

    a: "ExprNode"
    b: "ExprNode"
    shape: Shape = ()


@dataclass
class Transpose:
    """``x.T`` of a 2-D value."""

    x: "ExprNode"
    shape: Shape = ()


@dataclass
class Zeros:
    """``np.zeros((dims...))`` — the zero-initialised scratch array of the
    partial-window stencil idiom (NPBench ``hdiff``'s ``lap``)."""

    shape: Shape = ()


ExprNode = Union[Ref, Lit, SliceRead, Un, Bin, Cmp, Where, Reduce, MatMul,
                 Transpose, Zeros]

#: Unary intrinsics shared by the frontend and the jaxlike oracle.
UNARY_FNS = ("sin", "cos", "exp", "log", "sqrt", "tanh", "abs")
#: Element-wise binary operators; named ones render as ``np.<name>(a, b)``.
BINARY_OPS = ("+", "-", "*", "/", "**", "maximum", "minimum")
REDUCE_FNS = ("sum", "mean", "max", "min")
CMP_OPS = ("<", "<=", ">", ">=")


def reduce_shape(shape: Shape, axis: Optional[int], keepdims: bool) -> Shape:
    if axis is None:
        return ()
    out = []
    for position, d in enumerate(shape):
        if position == axis:
            if keepdims:
                out.append((None, 1))
        else:
            out.append(d)
    return tuple(out)


def matmul_shape(a: Shape, b: Shape) -> Shape:
    if len(a) == 2 and len(b) == 2:
        if a[1] != b[0]:
            raise ValueError(f"matmul contraction mismatch: {a} @ {b}")
        return (a[0], b[1])
    if len(a) == 2 and len(b) == 1:
        if a[1] != b[0]:
            raise ValueError(f"matmul contraction mismatch: {a} @ {b}")
        return (a[0],)
    if len(a) == 1 and len(b) == 2:
        if a[0] != b[0]:
            raise ValueError(f"matmul contraction mismatch: {a} @ {b}")
        return (b[1],)
    if len(a) == 1 and len(b) == 1:
        if a != b:
            raise ValueError(f"matmul contraction mismatch: {a} @ {b}")
        return ()
    raise ValueError(f"Unsupported matmul ranks: {a} @ {b}")


def children(expr: ExprNode) -> tuple[ExprNode, ...]:
    """Direct expression children (for traversal and shrinking)."""
    if isinstance(expr, (Ref, Lit, SliceRead, Zeros)):
        return ()
    if isinstance(expr, Un):
        return (expr.x,)
    if isinstance(expr, (Bin, Cmp)):
        return (expr.a, expr.b)
    if isinstance(expr, Where):
        return (expr.cond, expr.a, expr.b)
    if isinstance(expr, Reduce):
        return (expr.x,)
    if isinstance(expr, MatMul):
        return (expr.a, expr.b)
    if isinstance(expr, Transpose):
        return (expr.x,)
    raise TypeError(f"Unknown expression node {expr!r}")


def walk(expr: ExprNode) -> Iterator[ExprNode]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def refs_in(expr: ExprNode) -> set[str]:
    """All container names read by an expression."""
    names = set()
    for node in walk(expr):
        if isinstance(node, (Ref, SliceRead)):
            names.add(node.name)
    return names


# --------------------------------------------------------------- statements
@dataclass
class SAssign:
    """``target = expr`` (defines or fully overwrites a value)."""

    target: str
    expr: ExprNode


@dataclass
class SSliceWrite:
    """``target[items] = expr`` or ``target[items] += expr``."""

    target: str
    items: tuple[Item, ...]
    expr: ExprNode
    accumulate: bool = False


@dataclass
class SFor:
    """``for var in range(start, stop)``; ``stop`` is an int or a symbol."""

    var: str
    start: int
    stop: Union[int, str]
    body: list["StmtNode"] = field(default_factory=list)


@dataclass
class SIf:
    """``if cond: ... [else: ...]`` with a scalar condition."""

    cond: Cmp
    then_body: list["StmtNode"] = field(default_factory=list)
    else_body: list["StmtNode"] = field(default_factory=list)


@dataclass
class SReturn:
    """``return expr`` (always scalar, so every program is differentiable)."""

    expr: ExprNode


StmtNode = Union[SAssign, SSliceWrite, SFor, SIf, SReturn]


def iter_statements(body: Sequence[StmtNode]) -> Iterator[StmtNode]:
    """All statements, recursing into loop and branch bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, SFor):
            yield from iter_statements(stmt.body)
        elif isinstance(stmt, SIf):
            yield from iter_statements(stmt.then_body)
            yield from iter_statements(stmt.else_body)


def statement_count(body: Sequence[StmtNode]) -> int:
    """Number of statements, counting loop/branch headers as one each."""
    return sum(1 for _ in iter_statements(body))


# ----------------------------------------------------------------- programs
@dataclass
class ArgSpec:
    """One program argument: an array (``shape`` non-empty) or a scalar."""

    name: str
    shape: Shape = ()

    @property
    def is_array(self) -> bool:
        return len(self.shape) > 0

    def to_dict(self) -> dict:
        return {"name": self.name,
                "shape": [[d[0], d[1]] for d in self.shape]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ArgSpec":
        return cls(payload["name"],
                   tuple((d[0], int(d[1])) for d in payload["shape"]))


@dataclass
class FuzzProgram:
    """One generated program: arguments, symbol sizes and a statement body.

    ``data_seed`` pins the random input data, so a program is a fully
    reproducible differential test case by itself.
    """

    name: str
    dtype: str  # "float64" | "float32"
    args: list[ArgSpec]
    symbols: dict[str, int]
    body: list[StmtNode]
    data_seed: int = 0

    def statement_count(self) -> int:
        return statement_count(self.body)

    def array_args(self) -> list[ArgSpec]:
        return [arg for arg in self.args if arg.is_array]

    def wrt(self) -> list[str]:
        """Differentiated inputs: every array argument."""
        return [arg.name for arg in self.array_args()]

    def copy(self) -> "FuzzProgram":
        import copy as _copy

        return _copy.deepcopy(self)


def rebuild_shapes(program: FuzzProgram) -> None:
    """Recompute every expression node's ``shape`` in place.

    The shrinker edits trees structurally; this re-derives the shape
    annotations afterwards (and raises ``ValueError`` for edits that broke
    shape discipline, which the shrinker treats as an invalid candidate).
    """
    env: dict[str, Shape] = {arg.name: arg.shape for arg in program.args}

    for symbol in program.symbols:
        env.setdefault(symbol, ())

    def infer(expr: ExprNode) -> Shape:
        if isinstance(expr, (Lit, Zeros)):
            pass  # Lit is scalar by construction; Zeros carries its shape.
        elif isinstance(expr, Ref):
            if expr.name not in env:
                raise ValueError(f"Undefined name {expr.name!r}")
            expr.shape = env[expr.name]
        elif isinstance(expr, SliceRead):
            if expr.name not in env:
                raise ValueError(f"Undefined name {expr.name!r}")
            expr.shape = window_shape(env[expr.name], expr.items)
        elif isinstance(expr, Un):
            expr.shape = infer(expr.x)
        elif isinstance(expr, (Bin, Cmp)):
            expr.shape = broadcast(infer(expr.a), infer(expr.b))
        elif isinstance(expr, Where):
            expr.shape = broadcast(
                infer(expr.cond), broadcast(infer(expr.a), infer(expr.b))
            )
        elif isinstance(expr, Reduce):
            expr.shape = reduce_shape(infer(expr.x), expr.axis, expr.keepdims)
        elif isinstance(expr, MatMul):
            expr.shape = matmul_shape(infer(expr.a), infer(expr.b))
        elif isinstance(expr, Transpose):
            inner = infer(expr.x)
            if len(inner) != 2:
                raise ValueError("Transpose needs a 2-D operand")
            expr.shape = (inner[1], inner[0])
        else:
            raise TypeError(f"Unknown expression node {expr!r}")
        return expr.shape

    def visit(body: Sequence[StmtNode]) -> None:
        for stmt in body:
            if isinstance(stmt, SAssign):
                shape = infer(stmt.expr)
                existing = env.get(stmt.target)
                if existing is not None and shape != () and shape != existing:
                    raise ValueError(
                        f"Rebinding {stmt.target!r} changes shape {existing} -> {shape}"
                    )
                env[stmt.target] = existing if existing is not None else shape
            elif isinstance(stmt, SSliceWrite):
                if stmt.target not in env:
                    raise ValueError(f"Slice write to undefined {stmt.target!r}")
                window = window_shape(env[stmt.target], stmt.items)
                shape = infer(stmt.expr)
                if shape != () and shape != window:
                    raise ValueError(
                        f"Window write shape mismatch: {shape} into {window}"
                    )
            elif isinstance(stmt, SFor):
                visit(stmt.body)
            elif isinstance(stmt, SIf):
                infer(stmt.cond)
                if stmt.cond.shape != ():
                    raise ValueError("Branch conditions must be scalar")
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, SReturn):
                shape = infer(stmt.expr)
                if shape != ():
                    raise ValueError("Programs must return a scalar")
            else:
                raise TypeError(f"Unknown statement {stmt!r}")

    visit(program.body)


__all__ = [
    "ArgSpec",
    "Bin",
    "BINARY_OPS",
    "CMP_OPS",
    "Cmp",
    "Dim",
    "ExprNode",
    "FuzzProgram",
    "IndexItem",
    "Lit",
    "MatMul",
    "Reduce",
    "REDUCE_FNS",
    "Ref",
    "SAssign",
    "SFor",
    "SIf",
    "SliceItem",
    "SliceRead",
    "SReturn",
    "SSliceWrite",
    "Shape",
    "StmtNode",
    "Transpose",
    "Un",
    "UNARY_FNS",
    "Where",
    "Zeros",
    "broadcast",
    "children",
    "dim",
    "dim_text",
    "dim_value",
    "items_text",
    "iter_statements",
    "matmul_shape",
    "rebuild_shapes",
    "reduce_shape",
    "refs_in",
    "shape_value",
    "statement_count",
    "walk",
    "window_shape",
]
