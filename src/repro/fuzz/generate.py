"""Seeded random program generator over the frontend's supported subset.

:class:`ProgramGenerator` draws well-typed :class:`~repro.fuzz.grammar.
FuzzProgram` trees from a weighted grammar: element-wise expression maps,
stencil-offset slice combines, partial-window writes into zero-initialised
scratch arrays (the NPBench ``hdiff`` idiom), axis reductions with
``keepdims``, matmul/transpose/relu/softmax compositions, ``for range``
loops (scalar accumulation, Gauss-Seidel recurrences, per-row updates) and
scalar-condition branches — in both symbol-condition (``N > 7``,
vmap-compatible) and data-condition (``np.sum(a) > c``) flavours.

Two invariants make every draw a usable differential case:

* **Well-typed by construction.** The generator tracks a name→shape
  environment and only emits operations whose operand shapes agree;
  :func:`~repro.fuzz.grammar.rebuild_shapes` re-derives every annotation
  afterwards as a cross-check (a ``ValueError`` there is a generator bug,
  not a finding).
* **Numerically tame.** Input data is positive and O(1) (see
  ``CaseSpec.make_data``) and the generator guards the partial operations:
  ``log``/``sqrt`` operands are wrapped ``abs(x) + c``, denominators are
  ``abs(x) + 0.6``, ``**`` only sees positive bases with small constant
  exponents, and ``exp`` only sees bounded (``tanh``-squashed or
  row-max-subtracted) operands.  Divergences are therefore real compiler
  bugs, not conditioning artefacts.

Determinism: one ``random.Random(seed)`` stream drives everything, and each
program additionally records its own ``data_seed``, so
``ProgramGenerator(seed).generate(n)`` is fully reproducible from the seed
alone — which is how corpus entries name the run that found them.

:func:`hard_templates` returns the hand-built seed programs covering the
known hard shapes from the ROADMAP (partial-window stencil writes, stencil
cascades, control flow between producer and consumer, shared-operand fusion
chains, sequential loop recurrences, the matmul→relu→softmax ML block).
``generate()`` emits these first so every fuzz run — including the CI smoke
run — always covers them.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.fuzz.grammar import (
    ArgSpec,
    Bin,
    Cmp,
    ExprNode,
    FuzzProgram,
    IndexItem,
    Lit,
    MatMul,
    Reduce,
    Ref,
    SAssign,
    SFor,
    SIf,
    Shape,
    SliceItem,
    SliceRead,
    SReturn,
    SSliceWrite,
    StmtNode,
    Transpose,
    Un,
    Where,
    Zeros,
    dim,
    rebuild_shapes,
    window_shape,
)

#: Unary functions that are safe on any real operand.
_SAFE_UNARY = ("sin", "cos", "tanh", "abs")


def _lit(rng: random.Random) -> Lit:
    return Lit(round(rng.uniform(0.2, 1.8), 3))


def _positive(expr: ExprNode, rng: random.Random) -> ExprNode:
    """Wrap an arbitrary expression so it is strictly positive."""
    return Bin("+", Un("abs", expr), Lit(round(rng.uniform(0.3, 0.9), 3)))


class _Scope:
    """Name→shape environment for one program being generated."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.env: dict[str, Shape] = {}
        self.scalars: list[str] = []
        self.arg_symbols: list[str] = []
        self.counter = 0
        self.loop_counter = 0

    def add(self, name: str, shape: Shape) -> None:
        self.env[name] = shape
        if shape == ():
            self.scalars.append(name)

    def fresh(self, prefix: str = "t") -> str:
        self.counter += 1
        return f"{prefix}{self.counter - 1}"

    def fresh_loop_var(self) -> str:
        self.loop_counter += 1
        return f"i{self.loop_counter - 1}"

    def arrays(self, rank: Optional[int] = None) -> list[str]:
        return [
            name for name, shape in self.env.items()
            if shape != () and (rank is None or len(shape) == rank)
        ]

    def arrays_with_shape(self, shape: Shape) -> list[str]:
        return [name for name, their in self.env.items()
                if their == shape and shape != ()]

    def some_shape(self) -> Shape:
        choices = [shape for shape in self.env.values() if shape != ()]
        return self.rng.choice(choices)


class ProgramGenerator:
    """Draw reproducible random programs from the fuzz grammar.

    ``generate(count)`` yields the :func:`hard_templates` seeds first, then
    ``count - len(templates)`` random programs; every program's name embeds
    the generator seed and its index, and its ``data_seed`` pins the input
    data — see :doc:`/docs/fuzzing` for how to replay one by hand.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._index = 0

    # ------------------------------------------------------------- top level
    def generate(self, count: int, include_templates: bool = True,
                 ) -> list[FuzzProgram]:
        programs: list[FuzzProgram] = []
        if include_templates:
            programs.extend(hard_templates())
        while len(programs) < count:
            programs.append(self.random_program())
        return programs[:count]

    def random_program(self) -> FuzzProgram:
        index = self._index
        self._index += 1
        rng = random.Random(self.seed * 1_000_003 + index)
        name = f"fuzz_s{self.seed}_p{index}"
        dtype = "float64" if rng.random() < 0.8 else "float32"
        symbols = {"N": rng.randint(5, 9), "M": rng.randint(4, 8)}
        scope = _Scope(rng)

        args = self._make_args(rng, scope)
        body: list[StmtNode] = []

        productions = [
            (self._p_elementwise, 5),
            (self._p_stencil, 3),
            (self._p_partial_window, 2),
            (self._p_reduce, 2),
            (self._p_matmul, 2),
            (self._p_shared_operand, 2),
            (self._p_loop, 2),
            (self._p_branch, 2),
        ]
        weights = [weight for _, weight in productions]
        for _ in range(rng.randint(3, 7)):
            production = rng.choices(
                [fn for fn, _ in productions], weights=weights
            )[0]
            stmts = production(rng, scope)
            body.extend(stmts)

        body.append(SReturn(self._return_expr(rng, scope, args)))

        program = FuzzProgram(
            name=name, dtype=dtype, args=args, symbols=symbols, body=body,
            data_seed=rng.randrange(2**31),
        )
        rebuild_shapes(program)  # cross-check: a ValueError here is our bug
        return program

    # ------------------------------------------------------------- arguments
    def _make_args(self, rng: random.Random, scope: _Scope) -> list[ArgSpec]:
        shape_menu: list[Shape] = [
            (dim("N"),),
            (dim("M"),),
            (dim("N"), dim("M")),
            (dim("M"), dim("N")),
        ]
        args: list[ArgSpec] = []
        for position in range(rng.randint(1, 3)):
            shape = rng.choice(shape_menu)
            name = f"a{position}"
            args.append(ArgSpec(name, shape))
            scope.add(name, shape)
        if rng.random() < 0.5:
            args.append(ArgSpec("c", ()))
            scope.add("c", ())
        # Only symbols appearing in argument annotations exist frontend-side.
        scope.arg_symbols = sorted({
            base for arg in args for base, _ in arg.shape if base is not None
        })
        return args

    # ----------------------------------------------------------- expressions
    def _expr(self, rng: random.Random, scope: _Scope, shape: Shape,
              depth: int) -> ExprNode:
        """A random expression of the given shape (scalars broadcast in)."""
        same = scope.arrays_with_shape(shape)
        if depth <= 0 or (rng.random() < 0.3 and same):
            if same and rng.random() < 0.75:
                return Ref(rng.choice(same))
            if scope.scalars and rng.random() < 0.5:
                return Ref(rng.choice(scope.scalars))
            return _lit(rng)
        roll = rng.random()
        if roll < 0.30:
            fn = rng.choice(_SAFE_UNARY)
            return Un(fn, self._expr(rng, scope, shape, depth - 1))
        if roll < 0.38:  # guarded partial unaries
            inner = self._expr(rng, scope, shape, depth - 1)
            fn = rng.choice(("log", "sqrt", "exp"))
            if fn == "exp":  # bounded operand: tanh in [-1, 1]
                return Un("exp", Un("tanh", inner))
            return Un(fn, _positive(inner, rng))
        if roll < 0.80:
            op = rng.choice(("+", "-", "*", "maximum", "minimum", "/", "**"))
            a = self._expr(rng, scope, shape, depth - 1)
            if op == "/":
                return Bin("/", a, _positive(
                    self._expr(rng, scope, shape, depth - 1), rng))
            if op == "**":
                base = _positive(self._expr(rng, scope, shape, depth - 1), rng)
                return Bin("**", base, Lit(rng.choice((2.0, 1.5, 3.0))))
            b = self._expr(rng, scope, shape, depth - 1)
            return Bin(op, a, b)
        if roll < 0.90:
            cond = Cmp(rng.choice(("<", "<=", ">", ">=")),
                       self._expr(rng, scope, shape, depth - 1),
                       self._expr(rng, scope, shape, depth - 1))
            return Where(cond,
                         self._expr(rng, scope, shape, depth - 1),
                         self._expr(rng, scope, shape, depth - 1))
        return Un("-", self._expr(rng, scope, shape, depth - 1))

    def _shaped_expr(self, rng: random.Random, scope: _Scope, shape: Shape,
                     depth: int) -> ExprNode:
        """An expression of *exactly* the given shape.

        ``_expr`` alone only promises broadcast-compatibility (a draw can
        bottom out in a scalar literal); anchoring one operand on a live
        array of the target shape pins the result rank, so productions can
        record the target's shape in the scope truthfully.
        """
        if shape == ():
            return self._scalar_expr(rng, scope)
        anchor = Ref(rng.choice(scope.arrays_with_shape(shape)))
        rest = self._expr(rng, scope, shape, depth - 1)
        return Bin(rng.choice(("+", "-", "*", "maximum", "minimum")),
                   anchor, rest)

    def _scalar_expr(self, rng: random.Random, scope: _Scope) -> ExprNode:
        """A scalar expression (reductions over live arrays, scalars, lits)."""
        choices: list[ExprNode] = [_lit(rng)]
        for name in scope.scalars:
            choices.append(Ref(name))
        arrays = scope.arrays()
        if arrays:
            choices.append(Reduce(rng.choice(("sum", "mean")),
                                  Ref(rng.choice(arrays))))
        picked = rng.sample(choices, k=min(len(choices), 2))
        if len(picked) == 1:
            return picked[0]
        return Bin(rng.choice(("+", "*")), picked[0], picked[1])

    # ----------------------------------------------------------- productions
    def _p_elementwise(self, rng: random.Random, scope: _Scope,
                       ) -> list[StmtNode]:
        shape = scope.some_shape()
        target = scope.fresh()
        stmt = SAssign(target, self._shaped_expr(rng, scope, shape, depth=3))
        scope.add(target, shape)
        return [stmt]

    def _p_stencil(self, rng: random.Random, scope: _Scope) -> list[StmtNode]:
        """Combine shifted windows of one array: ``t = f(A[:-2], A[1:-1], ...)``."""
        candidates = [
            name for name in scope.arrays(rank=1)
            if scope.env[name][0][0] is not None
            and scope.env[name][0][1] >= -2
        ]
        if not candidates:
            return self._p_elementwise(rng, scope)
        source = rng.choice(candidates)
        trim = rng.choice((1, 2))
        reads = [
            SliceRead(source, (SliceItem(lo, lo - trim if lo < trim else 0),))
            for lo in range(trim + 1)
        ]
        expr: ExprNode = reads[0]
        for read in reads[1:]:
            expr = Bin(rng.choice(("+", "-", "*")), expr,
                       Bin("*", _lit(rng), read))
        target = scope.fresh()
        out_shape = window_shape(scope.env[source], reads[0].items)
        stmt = SAssign(target, expr)
        scope.add(target, out_shape)
        return [stmt]

    def _p_partial_window(self, rng: random.Random, scope: _Scope,
                          ) -> list[StmtNode]:
        """The hdiff idiom: zeros scratch + interior sub-window write."""
        candidates = [
            name for name in scope.arrays()
            if all(base is not None and offset >= 0
                   for base, offset in scope.env[name])
        ]
        if not candidates:
            return self._p_elementwise(rng, scope)
        source = rng.choice(candidates)
        shape = scope.env[source]
        target = scope.fresh()
        items = tuple(SliceItem(1, -1) for _ in shape)
        value = Bin("*", _lit(rng), SliceRead(source, items))
        stmts: list[StmtNode] = [
            SAssign(target, Zeros(shape=shape)),
            SSliceWrite(target, items, value,
                        accumulate=rng.random() < 0.3),
        ]
        scope.add(target, shape)
        # Consume the scratch immediately so fusion sees a producer chain.
        consumer = scope.fresh()
        stmts.append(SAssign(consumer, Bin("+", Ref(target), Ref(source))))
        scope.add(consumer, shape)
        return stmts

    def _p_reduce(self, rng: random.Random, scope: _Scope) -> list[StmtNode]:
        arrays = scope.arrays()
        if not arrays:
            return self._p_elementwise(rng, scope)
        source = rng.choice(arrays)
        shape = scope.env[source]
        fn = rng.choice(("sum", "mean", "max", "min"))
        target = scope.fresh("s")
        if len(shape) == 2 and rng.random() < 0.6:
            axis = rng.choice((0, 1))
            if rng.random() < 0.6:
                # keepdims normalisation: t = A / (|reduce(A, axis)| + c)
                red = Reduce(fn, Ref(source), axis=axis, keepdims=True)
                stmt = SAssign(target, Bin("/", Ref(source),
                                           _positive(red, rng)))
                scope.add(target, shape)
            else:
                stmt = SAssign(target, Reduce(fn, Ref(source), axis=axis))
                scope.add(target, (shape[1 - axis],))
            return [stmt]
        stmt = SAssign(target, Reduce(fn, Ref(source)))
        scope.add(target, ())
        return [stmt]

    def _p_matmul(self, rng: random.Random, scope: _Scope) -> list[StmtNode]:
        """Matmul / transpose chains, optionally through relu."""
        twod = scope.arrays(rank=2)
        if not twod:
            return self._p_elementwise(rng, scope)
        left = rng.choice(twod)
        lshape = scope.env[left]
        a: ExprNode = Ref(left)
        # Pick a right operand whose leading dim matches our trailing dim.
        rights: list[tuple[ExprNode, Shape]] = []
        for name in scope.arrays():
            shape = scope.env[name]
            if len(shape) == 1 and shape[0] == lshape[1]:
                rights.append((Ref(name), ()))
            elif len(shape) == 2 and shape[0] == lshape[1]:
                rights.append((Ref(name), (shape[1],)))
            elif len(shape) == 2 and shape[1] == lshape[1]:
                rights.append((Transpose(Ref(name)), (shape[0],)))
        if not rights:
            rights.append((Transpose(a), (lshape[0],)))
        b, tail = rng.choice(rights)
        out_shape = (lshape[0],) + tail
        expr: ExprNode = MatMul(a, b)
        if rng.random() < 0.5:  # relu
            expr = Bin("maximum", expr, Lit(0.0))
        target = scope.fresh("m")
        stmt = SAssign(target, expr)
        scope.add(target, out_shape)
        return [stmt]

    def _p_shared_operand(self, rng: random.Random, scope: _Scope,
                          ) -> list[StmtNode]:
        """One producer feeding two consumers (fusion-decision stress)."""
        shape = scope.some_shape()
        producer = scope.fresh()
        stmts: list[StmtNode] = [
            SAssign(producer, Un(rng.choice(_SAFE_UNARY),
                                 self._shaped_expr(rng, scope, shape, depth=2)))
        ]
        scope.add(producer, shape)
        for _ in range(2):
            consumer = scope.fresh()
            stmts.append(SAssign(consumer, Bin(
                rng.choice(("+", "*")), Ref(producer),
                self._expr(rng, scope, shape, depth=1))))
            scope.add(consumer, shape)
        return stmts

    def _p_loop(self, rng: random.Random, scope: _Scope) -> list[StmtNode]:
        roll = rng.random()
        if roll < 0.45:
            # Scalar accumulation over a fixed trip count.
            acc = scope.fresh("acc")
            var = scope.fresh_loop_var()
            seed_stmt = SAssign(acc, self._scalar_expr(rng, scope))
            scope.add(acc, ())
            body: list[StmtNode] = [SAssign(acc, Bin(
                "+", Bin("*", Ref(acc), Lit(round(rng.uniform(0.4, 0.9), 3))),
                self._scalar_expr(rng, scope)))]
            return [seed_stmt, SFor(var, 0, rng.randint(2, 4), body)]
        if roll < 0.75:
            # Gauss-Seidel-style sequential recurrence over a 1-D array.
            candidates = [
                name for name in scope.arrays(rank=1)
                if scope.env[name][0][0] is not None
                and scope.env[name][0][1] == 0
            ]
            if not candidates:
                return self._p_elementwise(rng, scope)
            array = rng.choice(candidates)
            symbol = scope.env[array][0][0]
            var = scope.fresh_loop_var()
            body = [SSliceWrite(
                array, (IndexItem(var),),
                Bin("+",
                    Bin("*", SliceRead(array, (IndexItem(f"{var} - 1"),)),
                        Lit(round(rng.uniform(0.3, 0.7), 3))),
                    Bin("*", SliceRead(array, (IndexItem(var),)),
                        Lit(round(rng.uniform(0.3, 0.6), 3)))),
            )]
            return [SFor(var, 1, symbol, body)]
        # Per-row update of a 2-D array.
        candidates = [
            name for name in scope.arrays(rank=2)
            if scope.env[name][0][0] is not None
            and scope.env[name][0][1] == 0
        ]
        if not candidates:
            return self._p_elementwise(rng, scope)
        array = rng.choice(candidates)
        symbol = scope.env[array][0][0]
        var = scope.fresh_loop_var()
        row = (IndexItem(var), SliceItem())
        body = [SSliceWrite(
            array, row,
            Bin("+", Bin("*", SliceRead(array, row),
                         Lit(round(rng.uniform(0.5, 0.9), 3))),
                _lit(rng)),
        )]
        return [SFor(var, 0, symbol, body)]

    def _p_branch(self, rng: random.Random, scope: _Scope) -> list[StmtNode]:
        shape = scope.some_shape()
        target = scope.fresh()
        seed_stmt = SAssign(target, self._shaped_expr(rng, scope, shape, depth=2))
        scope.add(target, shape)
        if rng.random() < 0.5 and scope.arg_symbols:
            # Symbol condition: resolvable at specialisation time, so this
            # stays vmap-compatible.
            cond = Cmp(rng.choice((">", "<=")),
                       Ref(rng.choice(scope.arg_symbols)),
                       Lit(rng.randint(5, 8)))
        else:
            # Data condition: materialised scalar, expected to be declined
            # (skip) under vmap.
            arrays = scope.arrays()
            source = rng.choice(arrays) if arrays else target
            cond = Cmp(rng.choice((">", "<")),
                       Reduce("mean", Ref(source)),
                       Lit(round(rng.uniform(0.6, 1.1), 3)))
        then_body: list[StmtNode] = [SAssign(
            target, Bin("*", Ref(target), Lit(round(rng.uniform(1.1, 1.6), 3))))]
        else_body: list[StmtNode] = [SAssign(
            target, Bin("+", Ref(target), _lit(rng)))]
        return [seed_stmt, SIf(cond, then_body, else_body)]

    # ---------------------------------------------------------------- return
    def _return_expr(self, rng: random.Random, scope: _Scope,
                     args: list[ArgSpec]) -> ExprNode:
        """A scalar combining every argument and most temporaries.

        Touching every array argument keeps all ``wrt`` gradients non-trivial;
        folding in the temporaries keeps dead-code elimination honest.
        """
        terms: list[ExprNode] = []
        for arg in args:
            if arg.is_array:
                terms.append(Reduce("sum", Ref(arg.name)))
            else:
                terms.append(Ref(arg.name))
        extras = [name for name in scope.env
                  if name not in {arg.name for arg in args}]
        rng.shuffle(extras)
        for name in extras[:4]:
            shape = scope.env[name]
            ref: ExprNode = Ref(name)
            terms.append(ref if shape == () else Reduce("sum", ref))
        expr: ExprNode = Bin("*", _lit(rng), terms[0])
        for term in terms[1:]:
            expr = Bin("+", expr, Bin("*", _lit(rng), term))
        return expr


# ------------------------------------------------------------ hard templates
def _template(name: str, dtype: str, args: list[ArgSpec],
              symbols: dict[str, int], body: list[StmtNode],
              data_seed: int) -> FuzzProgram:
    program = FuzzProgram(name=name, dtype=dtype, args=args, symbols=symbols,
                          body=body, data_seed=data_seed)
    rebuild_shapes(program)
    return program


def hard_templates() -> list[FuzzProgram]:
    """Hand-built seeds for the known hard shapes (always fuzzed first)."""
    programs: list[FuzzProgram] = []
    N, M = dim("N"), dim("M")

    # 1. Partial-window stencil write (NPBench hdiff idiom): interior
    #    sub-window of a zeros scratch array; must stay unfused-but-correct.
    interior = (SliceItem(1, -1), SliceItem(1, -1))
    lap_value = Bin(
        "-",
        Bin("+",
            Bin("+", SliceRead("a", (SliceItem(2, 0), SliceItem(1, -1))),
                SliceRead("a", (SliceItem(0, -2), SliceItem(1, -1)))),
            Bin("+", SliceRead("a", (SliceItem(1, -1), SliceItem(2, 0))),
                SliceRead("a", (SliceItem(1, -1), SliceItem(0, -2))))),
        Bin("*", Lit(4.0), SliceRead("a", interior)),
    )
    programs.append(_template(
        "seed_hdiff_partial_window", "float64",
        [ArgSpec("a", (N, M))], {"N": 7, "M": 6},
        [
            SAssign("lap", Zeros(shape=(N, M))),
            SSliceWrite("lap", interior, lap_value),
            SAssign("out", Bin("*", Ref("lap"), Ref("a"))),
            SReturn(Bin("+", Reduce("sum", Ref("out")),
                        Bin("*", Lit(0.1), Reduce("sum", Ref("a"))))),
        ],
        data_seed=101,
    ))

    # 2. Stencil cascade: two chained 3-point smoothers (O3 fusion stress).
    def smooth(source: str) -> ExprNode:
        return Bin("*", Lit(0.25), Bin(
            "+", Bin("+", SliceRead(source, (SliceItem(2, 0),)),
                     Bin("*", Lit(2.0), SliceRead(source, (SliceItem(1, -1),)))),
            SliceRead(source, (SliceItem(0, -2),))))

    programs.append(_template(
        "seed_smooth_chain", "float64",
        [ArgSpec("a", (N,))], {"N": 9, "M": 4},
        [
            SAssign("b", smooth("a")),
            SAssign("d", smooth("b")),
            SReturn(Bin("+", Reduce("sum", Ref("d")),
                        Bin("*", Lit(0.1), Reduce("sum", Ref("a"))))),
        ],
        data_seed=102,
    ))

    # 3. Control flow between producer and consumer (cross-state fusion
    #    guards): a symbol-condition branch rebinding the intermediate.
    programs.append(_template(
        "seed_branch_between_producer_consumer", "float64",
        [ArgSpec("a", (N,))], {"N": 8, "M": 4},
        [
            SAssign("t", Un("exp", Un("tanh", Ref("a")))),
            SIf(Cmp(">", Ref("N"), Lit(6)),
                [SAssign("t", Bin("*", Ref("t"), Lit(2.0)))],
                [SAssign("t", Bin("+", Ref("t"), Lit(0.5)))]),
            SAssign("v", Bin("*", Ref("t"), Ref("a"))),
            SReturn(Reduce("sum", Ref("v"))),
        ],
        data_seed=103,
    ))

    # 4. Data-dependent branch: legal forward/grad, expected skip under vmap.
    programs.append(_template(
        "seed_data_branch", "float64",
        [ArgSpec("a", (N,))], {"N": 6, "M": 4},
        [
            SAssign("t", Un("sin", Ref("a"))),
            SIf(Cmp(">", Reduce("mean", Ref("a")), Lit(0.85)),
                [SAssign("t", Bin("*", Ref("t"), Lit(1.5)))],
                [SAssign("t", Bin("-", Ref("t"), Lit(0.25)))]),
            SReturn(Bin("+", Reduce("sum", Ref("t")),
                        Reduce("sum", Ref("a")))),
        ],
        data_seed=104,
    ))

    # 5. Shared-operand fusion chain: one producer, two consumers.
    programs.append(_template(
        "seed_shared_operand_chain", "float64",
        [ArgSpec("a", (N,)), ArgSpec("b", (N,))], {"N": 7, "M": 4},
        [
            SAssign("t", Un("sin", Ref("a"))),
            SAssign("p", Bin("*", Ref("t"), Ref("b"))),
            SAssign("q", Bin("+", Ref("t"), Ref("b"))),
            SReturn(Bin("+", Reduce("sum", Ref("p")),
                        Reduce("sum", Ref("q")))),
        ],
        data_seed=105,
    ))

    # 6. Sequential Gauss-Seidel recurrence writing through an input array.
    programs.append(_template(
        "seed_gauss_seidel", "float64",
        [ArgSpec("a", (N,))], {"N": 8, "M": 4},
        [
            SFor("i", 1, "N", [SSliceWrite(
                "a", (IndexItem("i"),),
                Bin("+",
                    Bin("*", SliceRead("a", (IndexItem("i - 1"),)), Lit(0.6)),
                    Bin("*", SliceRead("a", (IndexItem("i"),)), Lit(0.5))))]),
            SReturn(Reduce("sum", Ref("a"))),
        ],
        data_seed=106,
    ))

    # 7. Matmul → relu → row-softmax (the fig13 ML block shapes).
    programs.append(_template(
        "seed_matmul_relu_softmax", "float64",
        [ArgSpec("w", (N, M)), ArgSpec("v", (M, N))], {"N": 5, "M": 4},
        [
            SAssign("z", MatMul(Ref("w"), Ref("v"))),
            SAssign("r", Bin("maximum", Ref("z"), Lit(0.0))),
            SAssign("e", Un("exp", Bin(
                "-", Ref("r"), Reduce("max", Ref("r"), axis=1, keepdims=True)))),
            SAssign("p", Bin("/", Ref("e"),
                             Reduce("sum", Ref("e"), axis=1, keepdims=True))),
            SReturn(Bin("+", Reduce("sum", Bin("*", Ref("p"), Ref("r"))),
                        Bin("*", Lit(0.01), Reduce("sum", Ref("z"))))),
        ],
        data_seed=107,
    ))

    # 8. Transposed-operand matmul with a scalar argument in the epilogue.
    programs.append(_template(
        "seed_transpose_matmul_scalar", "float64",
        [ArgSpec("w", (N, M)), ArgSpec("x", (N,)), ArgSpec("c", ())],
        {"N": 6, "M": 5},
        [
            SAssign("y", MatMul(Transpose(Ref("w")), Ref("x"))),
            SAssign("t", Bin("*", Ref("y"), Ref("c"))),
            SReturn(Bin("+", Reduce("sum", Ref("t")),
                        Bin("*", Lit(0.1), Reduce("sum", Ref("w"))))),
        ],
        data_seed=108,
    ))

    # 9. Scalar loop accumulation (LoopRegion with scalar state).
    programs.append(_template(
        "seed_loop_accumulate", "float64",
        [ArgSpec("a", (M,))], {"N": 5, "M": 6},
        [
            SAssign("s", Reduce("sum", Ref("a"))),
            SAssign("acc", Lit(0.5)),
            SFor("k", 0, 3, [SAssign("acc", Bin(
                "+", Bin("*", Ref("acc"), Lit(0.5)),
                Bin("*", Ref("s"), Lit(0.25))))]),
            SReturn(Bin("+", Ref("acc"), Reduce("mean", Ref("a")))),
        ],
        data_seed=109,
    ))

    # 10. float32 pass through the full comparison (loosened tolerance path).
    programs.append(_template(
        "seed_float32_elementwise", "float32",
        [ArgSpec("a", (N,)), ArgSpec("b", (N,))], {"N": 7, "M": 4},
        [
            SAssign("t", Bin("+", Bin("*", Ref("a"), Ref("b")),
                             Un("cos", Ref("a")))),
            SReturn(Reduce("sum", Ref("t"))),
        ],
        data_seed=110,
    ))

    return programs


__all__ = ["ProgramGenerator", "hard_templates"]
