"""Delta-debugging shrinker: minimise a failing program, keep the failure.

Given a :class:`~repro.fuzz.grammar.FuzzProgram` and the
:class:`~repro.fuzz.harness.FailureSignature` it triggers, :func:`shrink`
greedily applies structural reductions and keeps any candidate that (a) is
still a valid program (:func:`~repro.fuzz.grammar.rebuild_shapes` accepts
it) and (b) still fails the same way (same configuration, same error type —
the :func:`~repro.fuzz.harness.reproduces` predicate).  Passes run to a
fixed point:

1. **Statement deletion** — drop one statement at a time (returns are kept).
2. **Control-flow unwrapping** — replace a ``for``/``if`` with one of its
   bodies, removing the region boundary while keeping its effects.
3. **Expression hoisting** — replace a statement's expression by one of its
   own subexpressions (transitively reaches every subtree).
4. **Leaf simplification** — replace an expression by a same-shape argument
   reference or a literal.
5. **Argument dropping** — remove arguments no surviving statement reads.

Candidates are tried smallest-edit-last (deletions first), each accepted
candidate restarts the pass list, and ``max_candidates`` bounds the total
predicate evaluations, so shrinking always terminates.  The predicate is
injectable for tests; the default replays the failure through the real
differential harness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.fuzz.grammar import (
    ExprNode,
    FuzzProgram,
    Lit,
    Ref,
    SAssign,
    SFor,
    SIf,
    SReturn,
    SSliceWrite,
    StmtNode,
    children,
    rebuild_shapes,
    refs_in,
)
from repro.fuzz.harness import FailureSignature, reproduces


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    program: FuzzProgram
    original_statements: int
    statements: int
    candidates_tried: int
    rounds: int


def _statement_lists(body: list[StmtNode]) -> Iterator[list[StmtNode]]:
    """Every mutable statement list in a body (the body itself included)."""
    yield body
    for stmt in body:
        if isinstance(stmt, SFor):
            yield from _statement_lists(stmt.body)
        elif isinstance(stmt, SIf):
            yield from _statement_lists(stmt.then_body)
            yield from _statement_lists(stmt.else_body)


def _subexpressions(expr: ExprNode) -> Iterator[ExprNode]:
    """All *strict* subexpressions, shallowest first."""
    queue = list(children(expr))
    while queue:
        node = queue.pop(0)
        yield node
        queue.extend(children(node))


def _expr_slots(body: list[StmtNode]) -> Iterator[tuple[StmtNode, str]]:
    """(statement, attribute) pairs holding a replaceable expression."""
    for stmts in _statement_lists(body):
        for stmt in stmts:
            if isinstance(stmt, (SAssign, SSliceWrite, SReturn)):
                yield stmt, "expr"


def _candidates(program: FuzzProgram) -> Iterator[FuzzProgram]:
    """All one-edit reductions of ``program`` (cheapest structural first).

    Each candidate is an independent deep copy; the caller validates it with
    :func:`rebuild_shapes` and the failure predicate.
    """

    # 1. Delete one statement (never a return).
    for list_index, stmts in enumerate(_statement_lists(program.body)):
        for stmt_index, stmt in enumerate(stmts):
            if isinstance(stmt, SReturn):
                continue
            candidate = program.copy()
            lists = list(_statement_lists(candidate.body))
            del lists[list_index][stmt_index]
            yield candidate

    # 2. Unwrap control flow: splice a region body into its parent list.
    for list_index, stmts in enumerate(_statement_lists(program.body)):
        for stmt_index, stmt in enumerate(stmts):
            arms: list[list[StmtNode]]
            if isinstance(stmt, SFor):
                arms = [stmt.body]
            elif isinstance(stmt, SIf):
                arms = [stmt.then_body, stmt.else_body]
            else:
                continue
            for arm_index in range(len(arms)):
                candidate = program.copy()
                lists = list(_statement_lists(candidate.body))
                target = lists[list_index][stmt_index]
                arm = ([target.body] if isinstance(target, SFor)
                       else [target.then_body, target.else_body])[arm_index]
                lists[list_index][stmt_index:stmt_index + 1] = arm
                yield candidate

    # 3. Hoist a subexpression over its parent tree.
    for slot_index, (stmt, attr) in enumerate(_expr_slots(program.body)):
        expr = getattr(stmt, attr)
        for sub_index, _ in enumerate(_subexpressions(expr)):
            candidate = program.copy()
            slots = list(_expr_slots(candidate.body))
            cand_stmt, cand_attr = slots[slot_index]
            subs = list(_subexpressions(getattr(cand_stmt, cand_attr)))
            setattr(cand_stmt, cand_attr, subs[sub_index])
            yield candidate

    # 4. Replace an expression with a same-shape argument ref or a literal.
    replacement_names = [arg.name for arg in program.args]
    for slot_index, (stmt, attr) in enumerate(_expr_slots(program.body)):
        expr = getattr(stmt, attr)
        simple = (isinstance(expr, (Ref, Lit)))
        if simple:
            continue
        for name in itertools.chain(replacement_names, [None]):
            candidate = program.copy()
            slots = list(_expr_slots(candidate.body))
            cand_stmt, cand_attr = slots[slot_index]
            setattr(cand_stmt, cand_attr,
                    Ref(name) if name is not None else Lit(0.75))
            yield candidate

    # 5. Drop arguments nothing reads any more.
    used: set[str] = set()
    for stmts in _statement_lists(program.body):
        for stmt in stmts:
            if isinstance(stmt, (SAssign, SSliceWrite, SReturn)):
                used |= refs_in(stmt.expr)
            if isinstance(stmt, SSliceWrite):
                used.add(stmt.target)
            if isinstance(stmt, SIf):
                used |= refs_in(stmt.cond)
    for arg_index, arg in enumerate(program.args):
        if arg.name in used:
            continue
        candidate = program.copy()
        del candidate.args[arg_index]
        yield candidate


def _is_valid(candidate: FuzzProgram) -> bool:
    try:
        rebuild_shapes(candidate)
    except (ValueError, TypeError):
        return False
    return True


def shrink(
    program: FuzzProgram,
    signature: FailureSignature,
    *,
    batch: int = 2,
    max_candidates: int = 3000,
    predicate: Optional[Callable[[FuzzProgram], bool]] = None,
) -> ShrinkResult:
    """Greedy fixed-point minimisation of a failing program.

    ``predicate`` defaults to replaying ``signature`` through the
    differential harness; tests may inject a cheaper one.  The returned
    program still satisfies the predicate (the input program is returned
    unchanged if it somehow does not).
    """
    if predicate is None:
        def predicate(candidate: FuzzProgram) -> bool:
            return reproduces(candidate, signature, batch=batch)

    current = program.copy()
    original = current.statement_count()
    tried = 0
    rounds = 0
    improved = True
    while improved and tried < max_candidates:
        improved = False
        rounds += 1
        for candidate in _candidates(current):
            tried += 1
            if tried >= max_candidates:
                break
            if not _is_valid(candidate):
                continue
            if predicate(candidate):
                current = candidate
                improved = True
                break  # restart the pass list on the smaller program
    return ShrinkResult(
        program=current,
        original_statements=original,
        statements=current.statement_count(),
        candidates_tried=tried,
        rounds=rounds,
    )


__all__ = ["ShrinkResult", "shrink"]
