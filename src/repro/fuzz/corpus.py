"""The regression corpus: minimized fuzzer catches as JSON files.

Every failure the fuzzer finds (and every hand-seeded known-gap case) is
serialized as one :class:`CorpusEntry` JSON file under
``tests/corpus/fuzz/``; ``tests/test_fuzz_corpus.py`` replays the whole
directory on every test run, so a fuzzer catch becomes a permanent tier-1
regression test the moment its file is committed.

Entries store *rendered sources* (the imperative frontend form and the
functional oracle form), not grammar trees — replay goes through exactly
the same :class:`~repro.fuzz.harness.CaseSpec` path as a fresh fuzz run,
and entries remain valid even if the generator's internals change.

Two expectations are supported:

* ``"agree"`` — compile under the entry's configurations (default: the
  full matrix) and match the oracle; recorded
  ``UnsupportedFeatureError``/``AutodiffError`` skips are allowed, silent
  divergence is not.
* ``"frontend-rejects"`` — the frontend must refuse the program with the
  named error type (e.g. negative-step slices raising
  ``UnsupportedFeatureError``) rather than miscompiling it.

``origin`` records provenance (generator seed and program index, or
"hand-seeded: <reason>"), so any entry can be traced back to the run that
found it — see ``docs/fuzzing.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.fuzz.grammar import ArgSpec, FuzzProgram
from repro.fuzz.harness import (
    CaseOutcome,
    CaseSpec,
    Config,
    full_matrix,
    run_case,
)
from repro.fuzz.render import build_sdfg, render_oracle_source, render_repro_source


def default_corpus_dir() -> Path:
    """``tests/corpus/fuzz`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus" / "fuzz"


def parse_config(label: str) -> Config:
    """Inverse of :meth:`Config.label` (``"O3/grad/numpy"``, optionally with
    a fourth ``plan-on``/``plan-off`` segment)."""
    parts = label.split("/")
    planning = None
    if len(parts) == 4:
        if parts[3] not in ("plan-on", "plan-off"):
            raise ValueError(f"Unknown planning segment in config {label!r}")
        planning = parts[3] == "plan-on"
        parts = parts[:3]
    tier, mode, backend = parts
    return Config(tier, mode, backend, planning)


@dataclass
class CorpusEntry:
    """One replayable regression case."""

    name: str
    description: str
    dtype: str
    args: list[ArgSpec]
    symbols: dict[str, int]
    repro_source: str
    oracle_source: str
    data_seed: int = 0
    batch: int = 2
    atol: Optional[float] = None
    #: Config labels to replay; ``None`` means the full matrix.
    configs: Optional[list[str]] = None
    expect: str = "agree"  # "agree" | "frontend-rejects"
    expect_error: str = "UnsupportedFeatureError"
    origin: str = ""
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------- building
    @classmethod
    def from_program(cls, program: FuzzProgram, *, description: str,
                     origin: str, configs: Optional[list[str]] = None,
                     batch: int = 2) -> "CorpusEntry":
        return cls(
            name=program.name,
            description=description,
            dtype=program.dtype,
            args=list(program.args),
            symbols=dict(program.symbols),
            repro_source=render_repro_source(program),
            oracle_source=render_oracle_source(program),
            data_seed=program.data_seed,
            batch=batch,
            configs=configs,
            origin=origin,
        )

    def spec(self) -> CaseSpec:
        return CaseSpec(
            name=self.name, dtype=self.dtype, args=list(self.args),
            symbols=dict(self.symbols), repro_source=self.repro_source,
            oracle_source=self.oracle_source, data_seed=self.data_seed,
            batch=self.batch, atol=self.atol,
        )

    def config_list(self) -> list[Config]:
        if self.configs is None:
            return list(full_matrix())
        return [parse_config(label) for label in self.configs]

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "description": self.description,
            "dtype": self.dtype,
            "args": [arg.to_dict() for arg in self.args],
            "symbols": dict(self.symbols),
            "repro_source": self.repro_source,
            "oracle_source": self.oracle_source,
            "data_seed": self.data_seed,
            "batch": self.batch,
            "expect": self.expect,
            "origin": self.origin,
        }
        if self.atol is not None:
            payload["atol"] = self.atol
        if self.configs is not None:
            payload["configs"] = list(self.configs)
        if self.expect == "frontend-rejects":
            payload["expect_error"] = self.expect_error
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusEntry":
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            dtype=payload["dtype"],
            args=[ArgSpec.from_dict(arg) for arg in payload["args"]],
            symbols={k: int(v) for k, v in payload["symbols"].items()},
            repro_source=payload["repro_source"],
            oracle_source=payload["oracle_source"],
            data_seed=int(payload.get("data_seed", 0)),
            batch=int(payload.get("batch", 2)),
            atol=payload.get("atol"),
            configs=payload.get("configs"),
            expect=payload.get("expect", "agree"),
            expect_error=payload.get("expect_error", "UnsupportedFeatureError"),
            origin=payload.get("origin", ""),
            extra=payload.get("extra", {}),
        )

    def save(self, directory: Optional[Path] = None) -> Path:
        directory = Path(directory) if directory else default_corpus_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def load_entry(path: os.PathLike) -> CorpusEntry:
    with open(path) as handle:
        return CorpusEntry.from_dict(json.load(handle))


def load_corpus(directory: Optional[Path] = None) -> list[CorpusEntry]:
    """All corpus entries, sorted by file name for deterministic replay."""
    directory = Path(directory) if directory else default_corpus_dir()
    if not directory.is_dir():
        return []
    return [load_entry(path) for path in sorted(directory.glob("*.json"))]


def verify_entry(entry: CorpusEntry) -> list[CaseOutcome]:
    """Replay one entry; raise ``AssertionError`` if its expectation breaks.

    Returns the per-config outcomes for ``"agree"`` entries (skips carry
    their recorded reasons) and ``[]`` for ``"frontend-rejects"`` entries.
    """
    if entry.expect == "frontend-rejects":
        try:
            build_sdfg(entry.repro_source, entry.args, entry.dtype, entry.name)
        except Exception as exc:  # noqa: BLE001 - type-checked below
            if type(exc).__name__ != entry.expect_error:
                raise AssertionError(
                    f"{entry.name}: expected {entry.expect_error}, got "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            return []
        raise AssertionError(
            f"{entry.name}: frontend accepted a program it must reject "
            f"({entry.expect_error})"
        )
    outcomes = run_case(entry.spec(), entry.config_list())
    failures = [outcome for outcome in outcomes if outcome.status == "fail"]
    if failures:
        details = "; ".join(
            f"{outcome.config.label()}: {outcome.reason}" for outcome in failures
        )
        raise AssertionError(f"{entry.name}: {details}")
    return outcomes


__all__ = [
    "CorpusEntry",
    "default_corpus_dir",
    "load_corpus",
    "load_entry",
    "parse_config",
    "verify_entry",
]
