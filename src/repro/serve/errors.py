"""Typed errors of the serving runtime.

Every way a request can fail without a result is a distinct exception
type, so callers can route on them (retry elsewhere, surface a 429/503,
log and drop) instead of string-matching ``RuntimeError`` messages:

* :class:`DeadlineExceeded` — the request's ``timeout_ms`` budget elapsed
  while it sat in the queue (checked on admission *and* again right before
  it is padded into a batch);
* :class:`RequestCancelled` — the server dropped the request before
  dispatch: shed under ``shed_oldest`` backpressure, or still queued when
  the queue closed;
* :class:`QueueFullError` — ``submit()`` on a full bounded queue under the
  ``reject`` policy;
* :class:`CircuitOpenError` — the circuit breaker is open and no fallback
  callable was configured.

All derive from :class:`ServingError` (itself a ``RuntimeError``), so one
``except ServingError`` catches every runtime-originated failure while
kernel exceptions pass through untouched.
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class of every error raised by the serving runtime itself."""


class DeadlineExceeded(ServingError):
    """The request's deadline passed before it could be dispatched."""


class RequestCancelled(ServingError):
    """The server dropped the request pre-dispatch (shed or shutdown)."""


class QueueFullError(ServingError):
    """The bounded queue is full and the backpressure policy is ``reject``."""


class CircuitOpenError(ServingError):
    """The circuit breaker is open and no fallback callable is configured."""
