"""The fault-tolerant micro-batching executor: :class:`BatchQueue`.

Requests arrive one sample at a time (from many threads); a supervised
background worker coalesces them — up to ``max_batch`` samples, waiting at
most ``max_wait_ms`` after the first request of a batch — stacks the
per-sample arrays along a new leading axis, optionally pads up to a
bucketed size, dispatches **one** call of a batched kernel (typically
``repro.vmap(f).compile()``) and scatters the per-sample result slices
back to the callers' futures.

On top of the coalescing core (see ``docs/batching.md``) the runtime is
hardened for production serving (``docs/serving.md``):

* **Request lifecycle** — ``submit(..., timeout_ms=)`` attaches a deadline
  enforced while queued and again right before padding into a batch
  (:class:`~repro.serve.errors.DeadlineExceeded`); ``Future.cancel()`` is
  honored — cancelled requests are dropped pre-dispatch via
  ``set_running_or_notify_cancel`` and can never wedge the worker.
* **Backpressure** — a bounded pending queue (``max_pending``) with
  ``block`` / ``reject`` / ``shed_oldest`` policies
  (:mod:`repro.serve.policies`).
* **Supervision** — the worker loop is supervised: an unexpected dispatch
  error fails the in-flight batch with that error, restarts the loop and
  counts ``serve.worker_restarts_total`` instead of silently dying.
* **Fault isolation** — a failing batch is retried (capped exponential
  backoff) and then **bisected**, so transient faults are retried and a
  single poison sample fails alone while its batch-mates get results.

A :class:`~repro.serve.breaker.CircuitBreaker` composes as the
``batched_fn`` (it is just a callable), giving native-kernel failures a
NumPy-backend fallback path.  Deterministic failure injection for all of
the above lives in :mod:`repro.faults`.

::

    batched = repro.vmap(program).compile(optimize="O3")
    with BatchQueue(batched, max_batch=64, max_wait_ms=2.0) as queue:
        future = queue.submit(x=sample, bias=b)               # async
        bounded = queue.submit(timeout_ms=50.0, x=s2, bias=b) # with deadline
        y = queue(x=sample3, bias=b)                          # sync
        result = future.result()
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.obs.clock import monotonic_ns
from repro.obs.metrics import METRICS, Histogram
from repro.obs.trace import TRACER, span as _span
from repro.serve.errors import DeadlineExceeded, QueueFullError, RequestCancelled
from repro.serve.policies import Closed, Empty, PendingQueue

# Process-wide serving metrics, fed alongside the per-queue BatchStats:
# queue depth (samples submitted but not yet dispatched), the wait/dispatch
# latency distributions aggregated over every queue, and the resilience
# counters (retries, bisections, shed/rejected/expired/cancelled requests,
# worker restarts) — see docs/serving.md and docs/observability.md.
_OBS_QUEUE_DEPTH = METRICS.gauge("serve.queue_depth")
_OBS_WAIT = METRICS.histogram("serve.wait_seconds")
_OBS_DISPATCH = METRICS.histogram("serve.dispatch_seconds")
_OBS_RETRIES = METRICS.counter("serve.retries_total")
_OBS_BISECTIONS = METRICS.counter("serve.bisections_total")
_OBS_SHED = METRICS.counter("serve.shed_total")
_OBS_REJECTED = METRICS.counter("serve.rejected_total")
_OBS_EXPIRED = METRICS.counter("serve.deadline_expired_total")
_OBS_CANCELLED = METRICS.counter("serve.cancelled_total")
_OBS_RESTARTS = METRICS.counter("serve.worker_restarts_total")
_OBS_FAILED = METRICS.counter("serve.failed_requests_total")


@dataclass
class BatchStats:
    """Counters describing how the queue coalesced — and survived — traffic.

    Besides the coalescing counters, two latency histograms record, per
    queue, how long samples sat in the queue (``wait_seconds``: submit →
    dispatch start) and how long batched-kernel dispatches took
    (``dispatch_seconds``); ``wait_p50``/``wait_p99`` and
    ``dispatch_p50``/``dispatch_p99`` summarise them (NaN before the first
    dispatch).  The resilience counters mirror the process-wide
    ``serve.*_total`` metrics for this one queue.
    """

    requests: int = 0            #: samples accepted by submit()
    batches: int = 0             #: successful batched kernel dispatches
    batched_samples: int = 0     #: samples served through those dispatches
    padded_samples: int = 0      #: padding rows added by bucketing
    max_batch_observed: int = 0  #: largest batch dispatched (pre-padding)
    batch_sizes: dict[int, int] = field(default_factory=dict)  #: dispatched size -> count
    retries: int = 0             #: same-batch retries after a dispatch failure
    bisections: int = 0          #: batch splits while isolating a failure
    shed: int = 0                #: requests evicted by the shed_oldest policy
    rejected: int = 0            #: submits refused by the reject policy
    expired: int = 0             #: requests whose deadline passed pre-dispatch
    cancelled: int = 0           #: requests cancelled by their caller pre-dispatch
    failed: int = 0              #: requests resolved with an error
    worker_restarts: int = 0     #: supervised restarts of the worker loop
    #: queue-wait distribution in seconds (submit → dispatch start)
    wait_seconds: Histogram = field(default_factory=Histogram, repr=False)
    #: batched-kernel dispatch duration distribution in seconds
    dispatch_seconds: Histogram = field(default_factory=Histogram, repr=False)

    @property
    def mean_batch(self) -> float:
        """Average samples per dispatch (0.0 before the first dispatch)."""
        return self.batched_samples / self.batches if self.batches else 0.0

    @property
    def wait_p50(self) -> float:
        """Median queue wait in seconds (NaN before the first dispatch)."""
        return self.wait_seconds.p50

    @property
    def wait_p99(self) -> float:
        """99th-percentile queue wait in seconds."""
        return self.wait_seconds.p99

    @property
    def dispatch_p50(self) -> float:
        """Median dispatch duration in seconds."""
        return self.dispatch_seconds.p50

    @property
    def dispatch_p99(self) -> float:
        """99th-percentile dispatch duration in seconds."""
        return self.dispatch_seconds.p99


@dataclass
class _Request:
    kwargs: dict
    future: Future
    enqueued_ns: int = 0
    deadline_ns: int = 0  # 0 = no deadline


def bucketed(size: int, max_batch: int) -> int:
    """Round ``size`` up to the next power of two, capped at ``max_batch``."""
    bucket = 1
    while bucket < size:
        bucket *= 2
    return min(bucket, max_batch)


def _safe_set_result(future: Future, value) -> bool:
    """Resolve ``future`` with ``value`` unless it is already done/cancelled.

    A caller-side ``Future.cancel()`` or a double resolution must never
    raise ``InvalidStateError`` into the worker thread (the pre-hardening
    bug that permanently wedged the queue)."""
    try:
        future.set_result(value)
        return True
    except InvalidStateError:
        return False


def _safe_set_exception(future: Future, exc: BaseException) -> bool:
    """Fail ``future`` with ``exc`` unless it is already done/cancelled."""
    try:
        future.set_exception(exc)
        return True
    except InvalidStateError:
        return False


class BatchQueue:
    """Coalesces per-sample requests into calls of one batched function.

    Parameters
    ----------
    batched_fn:
        Callable accepting keyword arguments stacked along a leading batch
        axis and returning an array, a dict of arrays, or a (nested)
        tuple/list of them, each with the batch axis leading.  A compiled
        ``repro.vmap`` program, a batched
        :class:`~repro.autodiff.GradientFunction` or a
        :class:`~repro.serve.breaker.CircuitBreaker` fits directly.
    max_batch:
        Largest number of samples dispatched in one call.
    max_wait_ms:
        How long the worker waits for more samples after the first request
        of a batch arrived.  ``0`` dispatches whatever is immediately
        available (lowest latency, least coalescing).
    bucket:
        Pad each dispatch up to a power-of-two size (see :func:`bucketed`)
        by replicating the final sample; padded outputs are discarded.
    static_kwargs:
        Values passed to every dispatch unchanged — broadcast operands
        (``in_axes=None`` arguments) and symbol bindings.
    start:
        Start the worker thread immediately.  With ``start=False`` the
        queue refuses requests (``submit``/``__call__`` raise
        ``RuntimeError``) until :meth:`start` is called.  To stage a known
        set of requests for deterministic batch formation use
        :meth:`hold` / :meth:`release` on a *started* queue instead.
    max_pending:
        Bound on queued-but-undispatched requests (``None`` = unbounded).
    policy:
        Backpressure policy once ``max_pending`` is reached: ``"block"``
        (default), ``"reject"`` (submit raises
        :class:`~repro.serve.errors.QueueFullError`) or ``"shed_oldest"``
        (the oldest pending request fails with
        :class:`~repro.serve.errors.RequestCancelled`).
    max_retries:
        Dispatch attempts beyond the first for a failing batch (at each
        bisection level) before the batch is split — see
        ``docs/serving.md``.
    backoff_ms / backoff_cap_ms:
        Base and cap of the capped exponential backoff slept between
        retry attempts (``backoff_ms * 2**attempt``, capped).
    """

    def __init__(
        self,
        batched_fn: Callable,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        bucket: bool = False,
        static_kwargs: Optional[dict] = None,
        start: bool = True,
        max_pending: Optional[int] = None,
        policy: str = "block",
        max_retries: int = 2,
        backoff_ms: float = 1.0,
        backoff_cap_ms: float = 50.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.batched_fn = batched_fn
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.bucket = bucket
        self.static_kwargs = dict(static_kwargs or {})
        self.max_retries = int(max_retries)
        self.backoff_ms = float(backoff_ms)
        self.backoff_cap_ms = float(backoff_cap_ms)
        self.stats = BatchStats()
        self._pending = PendingQueue(capacity=max_pending, policy=policy)
        self._worker: Optional[threading.Thread] = None
        self._inflight: list[_Request] = []
        self._lock = threading.Lock()
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "BatchQueue":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, name="repro-batch-queue", daemon=True
                )
                self._worker.start()
        return self

    def close(self) -> None:
        """Stop accepting requests, drain the queue and join the worker."""
        self._pending.close()
        worker = self._worker
        if worker is not None:
            worker.join()

    def __enter__(self) -> "BatchQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def hold(self) -> "BatchQueue":
        """Pause batch formation: submitted requests stage in the queue."""
        self._pending.hold()
        return self

    def release(self) -> "BatchQueue":
        """Resume batch formation over everything staged under :meth:`hold`."""
        self._pending.release()
        return self

    # -- front-ends ------------------------------------------------------
    def submit(self, timeout_ms: Optional[float] = None, **sample) -> Future:
        """Enqueue one sample; returns a future resolving to its result.

        ``timeout_ms`` bounds how long the request may wait for dispatch;
        past the deadline it resolves with
        :class:`~repro.serve.errors.DeadlineExceeded` instead of riding a
        batch.  The returned future honors ``cancel()`` until the moment
        the worker claims it for dispatch.
        """
        if self._worker is None:
            raise RuntimeError("BatchQueue worker not started; call start()")
        now = monotonic_ns()
        deadline_ns = now + int(timeout_ms * 1e6) if timeout_ms is not None else 0
        request = _Request(
            kwargs=sample, future=Future(), enqueued_ns=now, deadline_ns=deadline_ns
        )
        # PendingQueue.put is atomic against close(): it either raises the
        # closed RuntimeError, or the request lands before the close and is
        # drained (failed with RequestCancelled) by the worker — a racing
        # close() can never leave this future pending forever.
        try:
            shed = self._pending.put(request)
        except QueueFullError:
            with self._lock:
                self.stats.rejected += 1
            _OBS_REJECTED.inc()
            raise
        with self._lock:
            self.stats.requests += 1
        _OBS_QUEUE_DEPTH.inc()
        if shed is not None:
            self._resolve_shed(shed)
        return request.future

    def __call__(self, timeout_ms: Optional[float] = None, **sample):
        """Synchronous front-end: submit and wait for the result."""
        return self.submit(timeout_ms=timeout_ms, **sample).result()

    # -- request resolution helpers --------------------------------------
    def _resolve_shed(self, request: _Request) -> None:
        with self._lock:
            self.stats.shed += 1
        _OBS_SHED.inc()
        _OBS_QUEUE_DEPTH.dec()
        _safe_set_exception(
            request.future,
            RequestCancelled("request shed under backpressure (shed_oldest)"),
        )

    def _resolve_expired(self, request: _Request) -> None:
        self.stats.expired += 1
        self.stats.failed += 1
        _OBS_EXPIRED.inc()
        _OBS_FAILED.inc()
        waited_ms = (monotonic_ns() - request.enqueued_ns) / 1e6
        _safe_set_exception(
            request.future,
            DeadlineExceeded(f"deadline exceeded after {waited_ms:.1f} ms in queue"),
        )

    def _resolve_cancelled(self, request: _Request) -> None:
        self.stats.cancelled += 1
        _OBS_CANCELLED.inc()
        # Moves a caller-cancelled future to CANCELLED_AND_NOTIFIED.
        request.future.set_running_or_notify_cancel()

    def _backoff_seconds(self, attempt: int) -> float:
        return min(self.backoff_ms * 2.0 ** attempt, self.backoff_cap_ms) / 1e3

    # -- worker ----------------------------------------------------------
    def _run(self) -> None:
        """Supervised worker entry: restart the serve loop on unexpected
        errors (failing the in-flight batch with them) until shutdown."""
        while True:
            try:
                self._serve_loop()
                break  # clean shutdown
            except BaseException as exc:  # noqa: BLE001 - supervised restart
                inflight, self._inflight = self._inflight, []
                for request in inflight:
                    if _safe_set_exception(request.future, exc):
                        self.stats.failed += 1
                        _OBS_FAILED.inc()
                self.stats.worker_restarts += 1
                _OBS_RESTARTS.inc()
                TRACER.record(
                    "serve.worker.restart", monotonic_ns(), 0,
                    error=type(exc).__name__,
                )
                if self._pending.closed:
                    break
        # Fail whatever is still queued after shutdown.
        for request in self._pending.drain():
            _OBS_QUEUE_DEPTH.dec()
            self.stats.failed += 1
            _OBS_FAILED.inc()
            _safe_set_exception(
                request.future, RequestCancelled("BatchQueue closed before dispatch")
            )

    def _serve_loop(self) -> None:
        """Form batches and dispatch until the pending queue closes."""
        while True:
            try:
                item = self._pending.get()
            except Closed:
                return
            if not self._admit(item):
                continue
            batch = [item]
            deadline = time.monotonic() + self.max_wait_ms / 1e3
            closing = False
            while len(batch) < self.max_batch:
                timeout = deadline - time.monotonic()
                try:
                    if timeout > 0:
                        extra = self._pending.get(timeout=timeout)
                    else:
                        extra = self._pending.get_nowait()
                except Empty:
                    break
                except Closed:
                    closing = True
                    break
                if self._admit(extra):
                    batch.append(extra)
            self._inflight = batch
            self._dispatch(batch)
            self._inflight = []
            if closing:
                return

    def _admit(self, request: _Request) -> bool:
        """Drop cancelled/expired requests before they enter a batch."""
        if request.future.cancelled():
            _OBS_QUEUE_DEPTH.dec()
            self._resolve_cancelled(request)
            return False
        if request.deadline_ns and monotonic_ns() > request.deadline_ns:
            _OBS_QUEUE_DEPTH.dec()
            self._resolve_expired(request)
            return False
        return True

    def _dispatch(self, batch: list) -> None:
        """Claim, validate and resiliently execute one formed batch."""
        start_ns = monotonic_ns()
        _OBS_QUEUE_DEPTH.dec(len(batch))
        claimed: list[_Request] = []
        for request in batch:
            if request.deadline_ns and start_ns > request.deadline_ns:
                self._resolve_expired(request)
                continue
            # Claim the future: from here on cancel() is refused, so
            # set_result/set_exception below cannot race a cancellation.
            if not request.future.set_running_or_notify_cancel():
                self._resolve_cancelled(request)
                continue
            if request.enqueued_ns:
                waited = (start_ns - request.enqueued_ns) / 1e9
                self.stats.wait_seconds.observe(waited)
                _OBS_WAIT.observe(waited)
            claimed.append(request)
        if not claimed:
            return
        # A sample with inconsistent argument names fails alone; the rest
        # of the batch still dispatches.
        names = list(claimed[0].kwargs)
        matching: list[_Request] = []
        for request in claimed:
            if list(request.kwargs) != names:
                self.stats.failed += 1
                _OBS_FAILED.inc()
                _safe_set_exception(
                    request.future,
                    ValueError(
                        f"Inconsistent sample arguments: {sorted(request.kwargs)} "
                        f"vs {sorted(names)}"
                    ),
                )
            else:
                matching.append(request)
        self._dispatch_resilient(matching)

    def _dispatch_resilient(self, requests: list, attempt: int = 0) -> None:
        """Execute; on failure retry with backoff, then bisect, so a single
        poison sample fails alone while its batch-mates get results."""
        live: list[_Request] = []
        now = monotonic_ns()
        for request in requests:
            if request.deadline_ns and now > request.deadline_ns:
                self._resolve_expired(request)
            else:
                live.append(request)
        if not live:
            return
        try:
            self._execute(live)
        except BaseException as exc:  # noqa: BLE001 - isolate, retry, bisect
            if attempt < self.max_retries:
                self.stats.retries += 1
                _OBS_RETRIES.inc()
                time.sleep(self._backoff_seconds(attempt))
                self._dispatch_resilient(live, attempt + 1)
            elif len(live) > 1:
                self.stats.bisections += 1
                _OBS_BISECTIONS.inc()
                mid = len(live) // 2
                self._dispatch_resilient(live[:mid])
                self._dispatch_resilient(live[mid:])
            else:
                self.stats.failed += 1
                _OBS_FAILED.inc()
                _safe_set_exception(live[0].future, exc)

    def _execute(self, requests: list) -> None:
        """Stack, pad, call the batched function once, scatter results."""
        size = len(requests)
        names = list(requests[0].kwargs)
        padded = bucketed(size, self.max_batch) if self.bucket else size
        stacked = {}
        for name in names:
            rows = [np.asarray(request.kwargs[name]) for request in requests]
            rows.extend([rows[-1]] * (padded - size))
            stacked[name] = np.stack(rows, axis=0)
        with _span("batch.dispatch", size=size, padded=padded):
            call_start_ns = monotonic_ns()
            result = self.batched_fn(**stacked, **self.static_kwargs)
            elapsed = (monotonic_ns() - call_start_ns) / 1e9
        self.stats.dispatch_seconds.observe(elapsed)
        _OBS_DISPATCH.observe(elapsed)
        self.stats.batches += 1
        self.stats.batched_samples += size
        self.stats.padded_samples += padded - size
        self.stats.max_batch_observed = max(self.stats.max_batch_observed, size)
        self.stats.batch_sizes[padded] = self.stats.batch_sizes.get(padded, 0) + 1
        for position, request in enumerate(requests):
            try:
                _safe_set_result(request.future, _scatter(result, position))
            except BaseException as exc:  # noqa: BLE001 - scatter failure
                self.stats.failed += 1
                _OBS_FAILED.inc()
                _safe_set_exception(request.future, exc)


def _scatter(result, position: int):
    """Per-sample slice of a batched result (arrays along axis 0; dicts,
    tuples and lists element-wise)."""
    if isinstance(result, np.ndarray):
        return result[position]
    if isinstance(result, dict):
        return {key: _scatter(value, position) for key, value in result.items()}
    if isinstance(result, (tuple, list)):
        return type(result)(_scatter(value, position) for value in result)
    raise TypeError(
        f"Batched function returned {type(result).__name__}; expected an "
        "ndarray, dict, tuple or list of batched arrays"
    )
