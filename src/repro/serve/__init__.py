"""The fault-tolerant serving runtime.

Production serving on top of the batching subsystem (ROADMAP direction 3):
:class:`BatchQueue` (:mod:`repro.serve.runtime`) coalesces per-sample
requests into batched kernel calls and is hardened end to end —
per-request deadlines and honored cancellation, bounded-queue
backpressure with pluggable policies (:mod:`repro.serve.policies`), a
supervised worker loop, retry-with-backoff plus batch bisection for fault
isolation, and a :class:`CircuitBreaker` (:mod:`repro.serve.breaker`) that
degrades to a NumPy-backend fallback after repeated native-kernel
failures.  Failure modes surface as typed errors
(:mod:`repro.serve.errors`) and everything is counted/spanned through
:mod:`repro.obs`.

Deterministic fault injection for all of the above lives in
:mod:`repro.faults`; the walkthrough is ``docs/serving.md``.  The original
import path :mod:`repro.batching.serve` re-exports this package for
compatibility.
"""

from repro.serve.breaker import STATE_VALUES, CircuitBreaker, numpy_fallback
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    QueueFullError,
    RequestCancelled,
    ServingError,
)
from repro.serve.policies import BACKPRESSURE_POLICIES, PendingQueue
from repro.serve.runtime import BatchQueue, BatchStats, bucketed

__all__ = [
    "BatchQueue",
    "BatchStats",
    "bucketed",
    "CircuitBreaker",
    "numpy_fallback",
    "STATE_VALUES",
    "ServingError",
    "DeadlineExceeded",
    "RequestCancelled",
    "QueueFullError",
    "CircuitOpenError",
    "BACKPRESSURE_POLICIES",
    "PendingQueue",
]
