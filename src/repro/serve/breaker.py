"""Circuit breaker: graceful degradation around the compiled callable.

:class:`CircuitBreaker` wraps a *primary* batched callable (typically the
native-backend compiled kernel) and an optional *fallback* (typically the
same program recompiled on the NumPy backend — see :func:`numpy_fallback`).
It is itself just a callable taking the stacked batch kwargs, so it drops
straight into :class:`~repro.serve.runtime.BatchQueue` as ``batched_fn``.

Three states (the classic pattern):

* **closed** — calls go to the primary; each success resets the
  consecutive-failure count, each failure increments it, and reaching
  ``failure_threshold`` trips the breaker **open**;
* **open** — calls go to the fallback (or raise
  :class:`~repro.serve.errors.CircuitOpenError` if none is configured)
  until ``reset_timeout_ms`` has elapsed since the trip;
* **half_open** — after the cooldown, exactly one call probes the primary
  while concurrent calls keep using the fallback; a successful probe
  closes the breaker, a failed probe re-opens it (restarting the clock).

Primary failures always propagate to the caller (so the batch queue's
retry/bisection machinery still isolates poison samples); the breaker only
changes *routing* of subsequent calls.  Fallback failures propagate too
but never move the state machine.

Observability (``docs/serving.md``): every trip increments
``serve.breaker_open_total``, fallback calls increment
``serve.breaker_fallback_total``, the ``serve.breaker_state`` gauge holds
the current state (0 = closed, 1 = half_open, 2 = open) and — with tracing
enabled — every transition records a zero-length
``serve.breaker.transition`` span carrying ``from_state``/``to_state``.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs.clock import monotonic_ns
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.serve.errors import CircuitOpenError

_OBS_BREAKER_OPEN = METRICS.counter("serve.breaker_open_total")
_OBS_BREAKER_FALLBACK = METRICS.counter("serve.breaker_fallback_total")
_OBS_BREAKER_STATE = METRICS.gauge("serve.breaker_state")

#: Gauge encoding of the breaker states.
STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class CircuitBreaker:
    """Routes calls between a primary callable and a degraded fallback.

    Parameters
    ----------
    primary:
        The preferred callable (e.g. a native-backend compiled kernel).
    fallback:
        Degraded-mode callable used while the breaker is open (e.g. the
        NumPy-backend recompile from :func:`numpy_fallback`).  Without a
        fallback, open-state calls raise :class:`CircuitOpenError`.
    failure_threshold:
        Consecutive primary failures that trip the breaker open.
    reset_timeout_ms:
        Cooldown after a trip before a half-open recovery probe is allowed.
    name:
        Label attached to transition spans (useful with several breakers).
    """

    def __init__(
        self,
        primary: Callable,
        fallback: Optional[Callable] = None,
        failure_threshold: int = 5,
        reset_timeout_ms: float = 1000.0,
        name: str = "default",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.primary = primary
        self.fallback = fallback
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_ms = float(reset_timeout_ms)
        self.name = name
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_ns = 0
        self._probe_inflight = False
        self._lock = threading.Lock()
        _OBS_BREAKER_STATE.set(STATE_VALUES[self._state])

    # -- introspection ---------------------------------------------------
    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half_open"``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def reset(self) -> None:
        """Force the breaker closed and forget failure history."""
        with self._lock:
            self._transition("closed")
            self._consecutive_failures = 0
            self._probe_inflight = False

    # -- state machine (call with self._lock held) -----------------------
    def _transition(self, to_state: str) -> None:
        from_state = self._state
        self._state = to_state
        if to_state == "open":
            self._opened_ns = monotonic_ns()
            _OBS_BREAKER_OPEN.inc()
        _OBS_BREAKER_STATE.set(STATE_VALUES[to_state])
        TRACER.record(
            "serve.breaker.transition", monotonic_ns(), 0,
            breaker=self.name, from_state=from_state, to_state=to_state,
        )

    def _cooldown_elapsed(self) -> bool:
        return (monotonic_ns() - self._opened_ns) >= self.reset_timeout_ms * 1e6

    # -- the callable ----------------------------------------------------
    def __call__(self, **kwargs):
        probing = False
        use_fallback = False
        with self._lock:
            if self._state == "open":
                if not self._probe_inflight and self._cooldown_elapsed():
                    self._transition("half_open")
                    self._probe_inflight = True
                    probing = True
                else:
                    use_fallback = True
            elif self._state == "half_open":
                if self._probe_inflight:
                    use_fallback = True
                else:
                    self._probe_inflight = True
                    probing = True
        if use_fallback:
            if self.fallback is None:
                raise CircuitOpenError(
                    f"circuit breaker {self.name!r} is {self._state} and no "
                    "fallback is configured"
                )
            _OBS_BREAKER_FALLBACK.inc()
            return self.fallback(**kwargs)
        try:
            result = self.primary(**kwargs)
        except BaseException:  # noqa: BLE001 - routing decision, then re-raise
            with self._lock:
                self._consecutive_failures += 1
                if probing:
                    self._probe_inflight = False
                    self._transition("open")  # failed probe restarts the clock
                elif (
                    self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold
                ):
                    self._transition("open")
            raise
        with self._lock:
            self._consecutive_failures = 0
            if probing:
                self._probe_inflight = False
                self._transition("closed")
        return result

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self._state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )


def numpy_fallback(program, optimize: str = "O1", **compile_kwargs) -> Callable:
    """Lazy NumPy-backend fallback for a (batched) program.

    Returns a callable that, on first use, compiles ``program`` through the
    existing ``backend="numpy"`` pipeline path (``program.compile`` — works
    for :class:`~repro.batching.BatchedProgram` and plain programs alike;
    usually a warm cache hit) and serves it from then on.  Compilation is
    deferred so a breaker that never trips never pays for the fallback.
    """
    lock = threading.Lock()
    compiled: dict = {}

    def call(**kwargs):
        fn = compiled.get("fn")
        if fn is None:
            with lock:
                fn = compiled.get("fn")
                if fn is None:
                    fn = program.compile(
                        optimize=optimize, backend="numpy", **compile_kwargs
                    )
                    compiled["fn"] = fn
        return fn(**kwargs)

    return call
