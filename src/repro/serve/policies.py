"""Bounded pending-request queue with pluggable backpressure policies.

:class:`PendingQueue` is the synchronisation core of :class:`~repro.serve.
runtime.BatchQueue`: a capacity-bounded deque guarded by one condition
variable, owning the close/hold lifecycle so the producer-side race
(``submit()`` vs ``close()``) has exactly two outcomes — the put raises
:class:`~repro.serve.errors.QueueFullError`/``RuntimeError``, or the item
lands *before* the close and is drained (and typed-error-failed) by the
worker.  No third "enqueued but never resolved" state exists.

Backpressure policies (the ``policy`` constructor argument, see
``docs/serving.md``):

* ``"block"`` — ``put`` blocks until space frees (or the queue closes);
  classic producer throttling;
* ``"reject"`` — ``put`` raises :class:`QueueFullError` immediately;
  load-shedding at the front door (HTTP 429 style);
* ``"shed_oldest"`` — the *oldest* pending item is evicted and returned to
  the caller (who fails its future with a typed error); freshest-first
  serving under overload.

``hold()``/``release()`` gate the consumer side: while held, ``get``
treats the queue as empty so tests and warm-up code can stage a known set
of requests and then let the worker form deterministic batches.
``close()`` releases any hold, wakes every waiter, and makes further puts
raise; remaining items are handed out by ``get`` (so the worker can serve
or fail them) and finally by ``drain()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.serve.errors import QueueFullError

#: The recognised backpressure policies.
BACKPRESSURE_POLICIES = ("block", "reject", "shed_oldest")


class Empty(Exception):
    """``get`` found no item within the timeout (queue still open)."""


class Closed(Exception):
    """``get`` found the queue closed *and* empty — clean shutdown signal."""


class PendingQueue:
    """A bounded, closeable, holdable FIFO of pending requests."""

    def __init__(self, capacity: Optional[int] = None, policy: str = "block") -> None:
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"Unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 (or None), got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._held = False

    # -- producer side ---------------------------------------------------
    def put(self, item):
        """Enqueue ``item``, applying the backpressure policy.

        Returns the evicted oldest item under ``shed_oldest`` (``None``
        otherwise); raises :class:`QueueFullError` under ``reject`` and
        ``RuntimeError`` once the queue is closed.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("BatchQueue is closed")
            shed = None
            if self.capacity is not None and len(self._items) >= self.capacity:
                if self.policy == "reject":
                    raise QueueFullError(
                        f"queue full ({len(self._items)}/{self.capacity} pending)"
                    )
                if self.policy == "shed_oldest":
                    shed = self._items.popleft()
                else:  # block
                    while len(self._items) >= self.capacity and not self._closed:
                        self._cond.wait()
                    if self._closed:
                        raise RuntimeError("BatchQueue is closed")
            self._items.append(item)
            self._cond.notify_all()
            return shed

    # -- consumer side ---------------------------------------------------
    def get(self, timeout: Optional[float] = None):
        """Next item, waiting up to ``timeout`` seconds (forever if None).

        Raises :class:`Empty` on timeout and :class:`Closed` once the queue
        is both closed and empty.  Items enqueued *before* ``close()`` are
        still returned, so the worker serves or fails them deterministically.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._items and not self._held:
                    item = self._items.popleft()
                    self._cond.notify_all()  # space freed for blocked putters
                    return item
                if self._closed:
                    raise Closed
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise Empty
                    self._cond.wait(remaining)

    def get_nowait(self):
        """``get`` without waiting (raises :class:`Empty`/:class:`Closed`)."""
        with self._cond:
            if self._items and not self._held:
                item = self._items.popleft()
                self._cond.notify_all()
                return item
            if self._closed:
                raise Closed
            raise Empty

    def drain(self) -> list:
        """Remove and return every pending item, ignoring any hold."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return items

    # -- lifecycle -------------------------------------------------------
    def hold(self) -> None:
        """Make ``get`` treat the queue as empty (stage requests)."""
        with self._cond:
            self._held = True

    def release(self) -> None:
        """Undo :meth:`hold`; the consumer sees everything staged at once."""
        with self._cond:
            self._held = False
            self._cond.notify_all()

    def close(self) -> None:
        """Refuse further puts, release any hold and wake every waiter."""
        with self._cond:
            self._closed = True
            self._held = False
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
