"""Timing helpers.

The benchmark harness (``repro.harness.measure``) builds on these to follow
the measurement methodology used by the paper (warmup run, repeated
measurements, confidence intervals); this module only provides the low-level
building blocks so they can be reused in examples and tests.

.. deprecated::
    The clock and the repeated-measurement loop now live in
    :mod:`repro.obs.clock` (``monotonic`` / ``repeat_timed``), so benchmark
    numbers and tracer spans come off one clock.  This module remains as a
    thin compatibility wrapper; new code should use :mod:`repro.obs.clock`
    directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.clock import monotonic, repeat_timed


class Timer:
    """Context manager measuring wall-clock time on the obs monotonic clock."""

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = monotonic() - self.start


@dataclass
class TimingResult:
    """Raw repeated-measurement result for one callable."""

    times: list[float] = field(default_factory=list)
    value: Any = None

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def median(self) -> float:
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


def measure_callable(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` unmeasured calls followed by ``repeats``
    measured calls.  Returns all individual times plus the last return value.

    Thin wrapper over :func:`repro.obs.clock.repeat_timed`.
    """
    times, value = repeat_timed(fn, repeats=repeats, warmup=warmup)
    return TimingResult(times=times, value=value)
