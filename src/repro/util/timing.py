"""Timing helpers.

The benchmark harness (``repro.harness.measure``) builds on these to follow
the measurement methodology used by the paper (warmup run, repeated
measurements, confidence intervals); this module only provides the low-level
building blocks so they can be reused in examples and tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``."""

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class TimingResult:
    """Raw repeated-measurement result for one callable."""

    times: list[float] = field(default_factory=list)
    value: Any = None

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def median(self) -> float:
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


def measure_callable(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` unmeasured calls followed by ``repeats``
    measured calls.  Returns all individual times plus the last return value.
    """
    result = TimingResult()
    for _ in range(max(0, warmup)):
        result.value = fn()
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result.value = fn()
        result.times.append(time.perf_counter() - start)
    return result
