"""A minimal insertion-ordered set.

Python dicts preserve insertion order, so an ordered set is a thin wrapper
around a dict with ``None`` values.  Deterministic ordering matters for the
compiler: generated code, gradient names and ILP variable ordering must be
stable across runs for tests and reproducibility.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, MutableSet
from typing import TypeVar

T = TypeVar("T")


class OrderedSet(MutableSet[T]):
    """Set preserving insertion order with list-like convenience methods."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._data: dict[T, None] = dict.fromkeys(items)

    def __contains__(self, item: object) -> bool:
        return item in self._data

    def __iter__(self) -> Iterator[T]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OrderedSet({list(self._data)!r})"

    def add(self, item: T) -> None:
        self._data[item] = None

    def discard(self, item: T) -> None:
        self._data.pop(item, None)

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    def copy(self) -> "OrderedSet[T]":
        return OrderedSet(self._data)

    def union(self, other: Iterable[T]) -> "OrderedSet[T]":
        result = self.copy()
        result.update(other)
        return result

    def intersection(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item in other_set)

    def difference(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item not in other_set)

    def as_list(self) -> list[T]:
        return list(self._data)
