"""Unique-name generation and identifier sanitisation."""

from __future__ import annotations

import keyword
import re


class NameGenerator:
    """Generates names that are unique within one scope (an SDFG).

    The generator remembers every name it has handed out or been told about,
    so transients, gradients, tapes and temporaries never collide.
    """

    def __init__(self, reserved: set[str] | None = None) -> None:
        self._used: set[str] = set(reserved or ())
        self._counters: dict[str, int] = {}

    def reserve(self, name: str) -> str:
        """Mark ``name`` as used and return it unchanged."""
        self._used.add(name)
        return name

    def is_used(self, name: str) -> bool:
        return name in self._used

    def fresh(self, prefix: str) -> str:
        """Return a fresh name starting with ``prefix``."""
        prefix = sanitize_identifier(prefix)
        if prefix not in self._used:
            self._used.add(prefix)
            return prefix
        count = self._counters.get(prefix, 0)
        while True:
            candidate = f"{prefix}_{count}"
            count += 1
            if candidate not in self._used:
                self._counters[prefix] = count
                self._used.add(candidate)
                return candidate


_IDENT_RE = re.compile(r"[^0-9a-zA-Z_]")


def sanitize_identifier(name: str) -> str:
    """Turn an arbitrary string into a valid Python identifier."""
    name = _IDENT_RE.sub("_", name)
    if not name:
        name = "_"
    if name[0].isdigit():
        name = "_" + name
    if keyword.iskeyword(name):
        name = name + "_"
    return name
