"""Small shared utilities used across the repro package.

Nothing here is specific to the paper; these are the helpers a compiler-ish
code base needs: error types, name generation, ordered sets and timing.
"""

from repro.util.errors import (
    ReproError,
    FrontendError,
    UnsupportedFeatureError,
    ValidationError,
    CodegenError,
    AutodiffError,
    CheckpointingError,
)
from repro.util.naming import NameGenerator, sanitize_identifier
from repro.util.ordered import OrderedSet
from repro.util.timing import Timer, measure_callable

__all__ = [
    "ReproError",
    "FrontendError",
    "UnsupportedFeatureError",
    "ValidationError",
    "CodegenError",
    "AutodiffError",
    "CheckpointingError",
    "NameGenerator",
    "sanitize_identifier",
    "OrderedSet",
    "Timer",
    "measure_callable",
]
