"""Exception hierarchy for the repro package.

Each compiler stage raises its own error type so callers (and tests) can
distinguish "this program is outside the supported subset" from genuine bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class FrontendError(ReproError):
    """The Python frontend could not lower a construct to the IR."""


class UnsupportedFeatureError(FrontendError):
    """The program uses a feature that is explicitly outside the supported
    subset (e.g. ``while`` loops, ``break``, recursion, complex numbers).

    This mirrors the paper's loop taxonomy (Fig. 5): unsupported constructs
    are rejected with a clear message instead of producing wrong gradients.
    """


class ValidationError(ReproError):
    """An SDFG failed structural validation."""


class CodegenError(ReproError):
    """Code generation failed for a (valid) SDFG."""


class AutodiffError(ReproError):
    """The automatic differentiation engine could not reverse a construct."""


class CheckpointingError(ReproError):
    """The ILP checkpointing machinery failed (e.g. infeasible memory limit)."""


class PipelineError(ReproError):
    """The compilation pipeline was misconfigured (unknown pass, bad opt level)."""
